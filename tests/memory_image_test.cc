/**
 * @file
 * Tests for the paged MemoryImage: page-boundary and sparse access
 * patterns, dumpRange spanning pages, the far (hash-mapped) tail of
 * the address space, and a differential check of the paged store
 * against a reference flat map under randomized write sequences.
 */

#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "ir/interpreter.hh"
#include "ir/module.hh"
#include "util/rng.hh"

namespace turnpike {
namespace {

constexpr uint64_t kPageBytes = MemoryImage::kPageWords * 8;

TEST(MemoryImagePaged, PageBoundaryWritesLandOnBothSides)
{
    MemoryImage img;
    // Last word of page 0, first word of page 1.
    img.write(kPageBytes - 8, 11);
    img.write(kPageBytes, 22);
    EXPECT_EQ(img.read(kPageBytes - 8), 11);
    EXPECT_EQ(img.read(kPageBytes), 22);
    EXPECT_EQ(img.pagesAllocated(), 2u);
    // Neighbours within each page are untouched.
    EXPECT_EQ(img.read(kPageBytes - 16), 0);
    EXPECT_EQ(img.read(kPageBytes + 8), 0);
}

TEST(MemoryImagePaged, SparseWritesAllocateOnlyTouchedPages)
{
    MemoryImage img;
    // Three widely separated addresses: data, spill and checkpoint
    // segments of the compiler layout.
    img.write(0x10000, 1);
    img.write(0x8000000, 2);
    img.write(0xc000000, 3);
    EXPECT_EQ(img.pagesAllocated(), 3u);
    EXPECT_EQ(img.read(0x10000), 1);
    EXPECT_EQ(img.read(0x8000000), 2);
    EXPECT_EQ(img.read(0xc000000), 3);
    // Reads of unallocated pages neither fault nor allocate.
    EXPECT_EQ(img.read(0x4000000), 0);
    EXPECT_EQ(img.pagesAllocated(), 3u);
}

TEST(MemoryImagePaged, FarAddressesBeyondDirectRangeWork)
{
    MemoryImage img;
    // Far past the 256 MiB direct-mapped range: exercises the hash
    // fallback for both the write and the read path.
    const uint64_t far = uint64_t(1) << 40;
    EXPECT_EQ(img.read(far), 0);
    img.write(far, 77);
    img.write(far + kPageBytes, 88);
    EXPECT_EQ(img.read(far), 77);
    EXPECT_EQ(img.read(far + kPageBytes), 88);
    EXPECT_EQ(img.read(far + 8), 0);
    EXPECT_EQ(img.pagesAllocated(), 2u);
}

TEST(MemoryImagePaged, DumpRangeSpansPages)
{
    MemoryImage img;
    // Fill the last 4 words of page 0 and first 4 of page 1.
    for (int i = 0; i < 8; i++)
        img.write(kPageBytes - 32 + 8 * i, 100 + i);
    std::vector<int64_t> out = img.dumpRange(kPageBytes - 32, 10);
    ASSERT_EQ(out.size(), 10u);
    for (int i = 0; i < 8; i++)
        EXPECT_EQ(out[i], 100 + i) << "word " << i;
    // The tail runs past the written words into zeroes.
    EXPECT_EQ(out[8], 0);
    EXPECT_EQ(out[9], 0);
}

TEST(MemoryImagePaged, CopyAndMoveKeepContents)
{
    MemoryImage img;
    img.write(0x10000, 42);
    img.write(0x8000000, 43);
    MemoryImage copy = img;
    copy.write(0x10000, 99);
    EXPECT_EQ(img.read(0x10000), 42) << "copy must not alias";
    MemoryImage moved = std::move(copy);
    EXPECT_EQ(moved.read(0x10000), 99);
    EXPECT_EQ(moved.read(0x8000000), 43);
}

/**
 * Differential test: a long randomized sequence of writes and reads
 * against a reference std::unordered_map with the exact semantics
 * the old per-word map implementation had. Addresses mix tight
 * locality (hot page), page-boundary straddles, the layout's far
 * segments and the hash-mapped tail.
 */
TEST(MemoryImagePaged, DifferentialAgainstReferenceMap)
{
    Rng rng(12345);
    MemoryImage img;
    std::unordered_map<uint64_t, int64_t> ref;

    auto pick_addr = [&]() -> uint64_t {
        switch (rng.below(5)) {
          case 0: // hot page
            return 0x10000 + 8 * rng.below(64);
          case 1: // page-boundary neighbourhood
            return 4 * kPageBytes - 32 + 8 * rng.below(8);
          case 2: // spill segment
            return 0x8000000 + 8 * rng.below(1024);
          case 3: // checkpoint segment
            return 0xc000000 + 8 * rng.below(256);
          default: // far tail (hash fallback)
            return (uint64_t(1) << 36) + 8 * rng.below(512);
        }
    };

    for (int i = 0; i < 200000; i++) {
        uint64_t addr = pick_addr();
        if (rng.below(2) == 0) {
            int64_t v = static_cast<int64_t>(rng.next());
            img.write(addr, v);
            ref[addr] = v;
        } else {
            auto it = ref.find(addr);
            int64_t expect = it == ref.end() ? 0 : it->second;
            ASSERT_EQ(img.read(addr), expect)
                << "addr 0x" << std::hex << addr << " iter " << i;
        }
    }

    // Full sweep: every reference word reads back; a dump across the
    // hottest page matches word-for-word.
    for (const auto &[addr, v] : ref)
        ASSERT_EQ(img.read(addr), v);
    std::vector<int64_t> dump = img.dumpRange(0x10000, 64);
    for (int i = 0; i < 64; i++) {
        auto it = ref.find(0x10000 + 8 * i);
        EXPECT_EQ(dump[i], it == ref.end() ? 0 : it->second);
    }
}

/** dataHash depends only on contents, not on page-allocation order. */
TEST(MemoryImagePaged, HashIndependentOfWriteOrder)
{
    Module m("m");
    m.addData("a", 4, {1, 2, 3, 4});
    m.addData("b", 2, {5, 6});

    MemoryImage fwd;
    fwd.loadModule(m);

    // Same final contents, written back-to-front with scratch writes
    // to other segments interleaved (different allocation order).
    MemoryImage rev;
    rev.write(0xc000000, 123);
    for (int obj = 1; obj >= 0; obj--) {
        const DataObject &d = m.data()[obj];
        for (int i = static_cast<int>(d.init.size()) - 1; i >= 0; i--)
            rev.write(d.base + 8 * static_cast<uint64_t>(i),
                      d.init[static_cast<size_t>(i)]);
    }
    EXPECT_EQ(fwd.dataHash(m), rev.dataHash(m));

    rev.write(m.data()[0].base + 8, -2);
    EXPECT_NE(fwd.dataHash(m), rev.dataHash(m));
}

} // namespace
} // namespace turnpike
