/**
 * @file
 * Randomized invariant tests for the hardware structures: the color
 * maps' slot accounting (no slot ever double-allocated; verified
 * slot always readable), the store buffer's FIFO/gating discipline,
 * and the CLQ's conservative-detection guarantee (the compact range
 * design never claims WAR-freedom that the exact design would deny).
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "ir/function.hh"
#include "sim/clq.hh"
#include "sim/color_maps.hh"
#include "sim/store_buffer.hh"
#include "util/rng.hh"

namespace turnpike {
namespace {

class ColorMapProperty : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(ColorMapProperty, SlotsNeverDoubleAllocated)
{
    Rng rng(GetParam());
    ColorMaps cm;
    // Per register: colors currently held by unverified regions.
    std::map<Reg, std::multiset<int>> held;
    // Simulated in-flight regions: list of (reg, slot) batches.
    std::vector<std::vector<UsedColor>> inflight;

    for (int step = 0; step < 2000; step++) {
        double roll = rng.real();
        if (roll < 0.55) {
            // A region checkpoints a few registers.
            std::vector<UsedColor> used;
            int n = static_cast<int>(rng.range(1, 4));
            for (int i = 0; i < n; i++) {
                Reg r = static_cast<Reg>(rng.below(8));
                int c = cm.tryAssign(r);
                if (c < 0) {
                    // Pool empty: quarantine slot, always available.
                    used.push_back({r, layout::kQuarantineColor});
                    continue;
                }
                // The color must not already be held or be the
                // verified slot.
                EXPECT_EQ(held[r].count(c), 0u)
                    << "color double-allocated";
                EXPECT_NE(cm.verifiedSlot(r), c)
                    << "allocated the verified slot";
                held[r].insert(c);
                used.push_back({r, c});
            }
            inflight.push_back(std::move(used));
        } else if (roll < 0.85 && !inflight.empty()) {
            // Oldest region verifies.
            auto used = inflight.front();
            inflight.erase(inflight.begin());
            cm.applyVerified(used);
            for (auto &[r, c] : used)
                if (c != layout::kQuarantineColor)
                    held[r].erase(held[r].find(c));
            // VC must now point at the last slot of each register in
            // this batch.
            std::map<Reg, int> last;
            for (auto &[r, c] : used)
                last[r] = c;
            for (auto &[r, c] : last)
                EXPECT_EQ(cm.verifiedSlot(r), c);
        } else if (!inflight.empty()) {
            // Squash everything (recovery).
            for (auto &used : inflight) {
                cm.recycleUnverified(used);
                for (auto &[r, c] : used)
                    if (c != layout::kQuarantineColor)
                        held[r].erase(held[r].find(c));
            }
            inflight.clear();
        }
        // Conservation: held + free <= number of colors.
        for (Reg r = 0; r < 8; r++) {
            EXPECT_LE(static_cast<int>(held[r].size()) +
                          cm.freeColors(r),
                      layout::kNumColors)
                << "color conservation violated for r" << r;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ColorMapProperty,
                         ::testing::Values(11, 22, 33, 44, 55));

class SbProperty : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(SbProperty, FifoGatingDiscipline)
{
    Rng rng(GetParam());
    StoreBuffer sb(4);
    uint64_t next_region = 0;
    uint64_t oldest_unreleased = 0;
    std::vector<SbEntry> shadow; // expected FIFO content

    for (int step = 0; step < 3000; step++) {
        double roll = rng.real();
        if (roll < 0.4 && !sb.full()) {
            SbEntry e{rng.below(64) * 8, rng.range(-9, 9),
                      next_region, StoreKind::App, false};
            sb.push(e);
            shadow.push_back(e);
        } else if (roll < 0.55) {
            next_region++;
        } else if (roll < 0.75 &&
                   oldest_unreleased < next_region) {
            sb.release(oldest_unreleased);
            for (auto &e : shadow)
                if (e.regionInstance == oldest_unreleased)
                    e.releasable = true;
            oldest_unreleased++;
        } else {
            while (sb.headReleasable()) {
                SbEntry got = sb.pop();
                ASSERT_FALSE(shadow.empty());
                EXPECT_EQ(got.addr, shadow.front().addr);
                EXPECT_EQ(got.value, shadow.front().value);
                EXPECT_TRUE(shadow.front().releasable);
                shadow.erase(shadow.begin());
            }
        }
        EXPECT_EQ(sb.size(), shadow.size());
        // youngestFor must return the LAST matching entry.
        if (!shadow.empty()) {
            uint64_t probe = shadow[rng.below(shadow.size())].addr;
            const SbEntry *got = sb.youngestFor(probe);
            ASSERT_NE(got, nullptr);
            const SbEntry *want = nullptr;
            for (auto &e : shadow)
                if (e.addr == probe)
                    want = &e;
            EXPECT_EQ(got->value, want->value);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SbProperty,
                         ::testing::Values(7, 17, 27));

class ClqProperty : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(ClqProperty, CompactIsConservativeVsIdeal)
{
    // Whenever the compact design says "WAR-free", the ideal design
    // must agree (ranges only over-approximate). And a disabled CLQ
    // never claims WAR-freedom.
    Rng rng(GetParam());
    Clq compact(ClqDesign::Compact, 3);
    Clq ideal(ClqDesign::Ideal, 1u << 20);
    uint64_t region = 0;

    for (int step = 0; step < 3000; step++) {
        double roll = rng.real();
        if (roll < 0.5) {
            uint64_t addr = rng.below(256) * 8;
            compact.insertLoad(region, addr);
            ideal.insertLoad(region, addr);
        } else if (roll < 0.7) {
            region++;
        } else if (roll < 0.85 && region > 0) {
            uint64_t v = rng.below(region);
            compact.onRegionVerified(v);
            ideal.onRegionVerified(v);
        } else {
            uint64_t addr = rng.below(256) * 8;
            if (compact.enabled() && compact.isWarFree(addr)) {
                EXPECT_TRUE(ideal.isWarFree(addr))
                    << "compact claimed WAR-free where ideal "
                    << "sees a conflict at 0x" << std::hex << addr;
            }
            if (!compact.enabled()) {
                EXPECT_FALSE(compact.isWarFree(addr));
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClqProperty,
                         ::testing::Values(3, 13, 23, 43));

} // namespace
} // namespace turnpike
