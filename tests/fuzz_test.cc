/**
 * @file
 * Randomized property tests: a constrained random IR generator
 * produces arbitrary well-formed programs (nested loops, diamonds,
 * aliasing stores, register reuse), which must then survive the
 * entire stack for many seeds:
 *
 *  1. every compiler configuration preserves the interpreter-
 *     observable result;
 *  2. the cycle-level pipeline matches the functional interpreter;
 *  3. injected faults always recover to the golden image.
 *
 * This is the broadest net for miscompilations and recovery holes —
 * several real bugs in region repair and recovery were found by
 * earlier versions of this harness.
 */

#include <gtest/gtest.h>

#include "core/compiler.hh"
#include "core/runner.hh"
#include "ir/builder.hh"
#include "ir/interpreter.hh"
#include "ir/verifier.hh"
#include "machine/minterp.hh"
#include "sim/pipeline.hh"
#include "util/rng.hh"

namespace turnpike {
namespace {

/**
 * Generate a random structured function: a sequence of statements,
 * where a statement is a straight-line computation, a store, a
 * counted do-while loop (possibly nested), or an if/else diamond.
 */
class RandomProgram
{
  public:
    explicit RandomProgram(uint64_t seed) : rng_(seed) {}

    std::unique_ptr<Module> build()
    {
        auto mod = std::make_unique<Module>("fuzz");
        arr_ = &mod->addData("A", 64, randomInit(64));
        out_ = &mod->addData("out", 64);
        Function &fn = mod->addFunction("main");
        IRBuilder b(fn);
        BlockId entry = b.newBlock("entry");
        b.setBlock(entry);
        base_ = b.li(static_cast<int64_t>(arr_->base));
        ob_ = b.li(static_cast<int64_t>(out_->base));
        for (int i = 0; i < 5; i++)
            vals_.push_back(b.li(rng_.range(-50, 50)));
        emitStatements(b, /*budget=*/12, /*depth=*/0);
        // Flush a few live values so the generator's work is
        // observable.
        for (size_t i = 0; i < vals_.size() && i < 6; i++)
            b.store(vals_[i], ob_, 8 * static_cast<int64_t>(i));
        b.halt();
        verifyOrDie(fn);
        return mod;
    }

  private:
    std::vector<int64_t> randomInit(uint64_t words)
    {
        std::vector<int64_t> init(words);
        for (auto &x : init)
            x = rng_.range(0, 63);
        return init;
    }

    Reg randomVal() { return vals_[rng_.below(vals_.size())]; }

    /** Replace a random tracked value. */
    void track(Reg r) { vals_[rng_.below(vals_.size())] = r; }

    void emitCompute(IRBuilder &b)
    {
        static const Op ops[] = {Op::Add, Op::Sub, Op::Mul, Op::Xor,
                                 Op::And, Op::Or,  Op::Shr, Op::CmpLt};
        Op op = ops[rng_.below(8)];
        if (rng_.chance(0.5))
            track(b.bin(op, randomVal(), randomVal()));
        else
            track(b.binImm(op, randomVal(), rng_.range(1, 9)));
    }

    void emitLoad(IRBuilder &b)
    {
        // Bounded index: A[val & 63].
        Reg idx = b.binImm(Op::And, randomVal(), 63);
        Reg off = b.binImm(Op::Shl, idx, 3);
        Reg addr = b.add(base_, off);
        track(b.load(addr));
    }

    void emitStore(IRBuilder &b)
    {
        Reg idx = b.binImm(Op::And, randomVal(), 63);
        Reg off = b.binImm(Op::Shl, idx, 3);
        Reg addr = b.add(base_, off);
        b.store(randomVal(), addr);
    }

    void emitDiamond(IRBuilder &b, int budget, int depth)
    {
        Function &fn = b.function();
        BlockId then_bb = b.newBlock("f.then");
        BlockId else_bb = b.newBlock("f.else");
        BlockId join = b.newBlock("f.join");
        Reg c = b.binImm(Op::CmpLt, randomVal(), rng_.range(-20, 20));
        b.br(c, then_bb, else_bb);
        b.setBlock(then_bb);
        emitStatements(b, budget / 2, depth + 1);
        b.jmp(join);
        b.setBlock(else_bb);
        emitStatements(b, budget / 2, depth + 1);
        b.jmp(join);
        b.setBlock(join);
        (void)fn;
    }

    void emitLoop(IRBuilder &b, int budget, int depth)
    {
        BlockId body = b.newBlock("f.body");
        BlockId after = b.newBlock("f.after");
        Reg iv = b.reg();
        b.liTo(iv, 0);
        int64_t trips = rng_.range(2, 6);
        b.jmp(body);
        b.setBlock(body);
        emitStatements(b, budget / 2, depth + 1);
        b.binImmTo(Op::Add, iv, iv, 1);
        Reg c = b.binImm(Op::CmpLt, iv, trips);
        b.br(c, body, after);
        b.setBlock(after);
    }

    void emitStatements(IRBuilder &b, int budget, int depth)
    {
        while (budget > 0) {
            double roll = rng_.real();
            if (roll < 0.35) {
                emitCompute(b);
                budget -= 1;
            } else if (roll < 0.55) {
                emitLoad(b);
                budget -= 1;
            } else if (roll < 0.75) {
                emitStore(b);
                budget -= 1;
            } else if (roll < 0.88 && depth < 2 && budget >= 4) {
                emitLoop(b, budget - 2, depth);
                budget -= 4;
            } else if (depth < 2 && budget >= 4) {
                emitDiamond(b, budget - 2, depth);
                budget -= 4;
            } else {
                emitCompute(b);
                budget -= 1;
            }
        }
    }

    Rng rng_;
    DataObject *arr_ = nullptr;
    DataObject *out_ = nullptr;
    Reg base_ = kNoReg;
    Reg ob_ = kNoReg;
    std::vector<Reg> vals_;
};

class Fuzz : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(Fuzz, AllConfigsPreserveSemantics)
{
    auto golden_mod = RandomProgram(GetParam()).build();
    InterpResult golden =
        interpret(*golden_mod, *golden_mod->functions()[0], 2000000);
    ASSERT_EQ(golden.reason, StopReason::Halted);
    uint64_t want = golden.memory.dataHash(*golden_mod);

    for (const ResilienceConfig &cfg :
         {ResilienceConfig::baseline(), ResilienceConfig::turnstile(10),
          ResilienceConfig::turnstile(50),
          ResilienceConfig::fastRelease(10),
          ResilienceConfig::turnpike(10),
          ResilienceConfig::turnpike(50)}) {
        auto mod = RandomProgram(GetParam()).build();
        CompiledProgram prog = compileWorkload(*mod, cfg);
        InterpResult mr = interpretMachine(*mod, *prog.mf, 4000000);
        ASSERT_EQ(mr.reason, StopReason::Halted) << cfg.label;
        EXPECT_EQ(mr.memory.dataHash(*mod), want)
            << "miscompiled under " << cfg.label;

        InOrderPipeline pipe(*mod, *prog.mf, cfg.toPipelineConfig());
        PipelineResult pr = pipe.run();
        ASSERT_TRUE(pr.halted) << cfg.label;
        EXPECT_EQ(pr.memory.dataHash(*mod), want)
            << "pipeline diverged under " << cfg.label;
    }
}

TEST_P(Fuzz, FaultsAlwaysRecover)
{
    ResilienceConfig cfg = ResilienceConfig::turnpike(15);
    auto mod = RandomProgram(GetParam()).build();
    CompiledProgram prog = compileWorkload(*mod, cfg);
    InOrderPipeline clean_pipe(*mod, *prog.mf, cfg.toPipelineConfig());
    PipelineResult clean = clean_pipe.run();
    ASSERT_TRUE(clean.halted);
    uint64_t want = clean.memory.dataHash(*mod);
    if (clean.stats.cycles < 200)
        return; // too short to hit meaningfully

    for (uint64_t fseed = 1; fseed <= 4; fseed++) {
        Rng rng(GetParam() * 131 + fseed);
        auto plan = makeFaultPlan(rng, clean.stats.cycles, 15, 2);
        InOrderPipeline pipe(*mod, *prog.mf, cfg.toPipelineConfig());
        PipelineResult pr = pipe.run(plan);
        ASSERT_TRUE(pr.halted);
        EXPECT_EQ(pr.memory.dataHash(*mod), want)
            << "fault seed " << fseed << " corrupted the result";
    }
}

std::vector<uint64_t>
seeds()
{
    std::vector<uint64_t> v;
    for (uint64_t s = 1; s <= 40; s++)
        v.push_back(s * 7919);
    return v;
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fuzz, ::testing::ValuesIn(seeds()));

} // namespace
} // namespace turnpike
