/**
 * @file
 * Tests for the growable lock-free MPMC queue (util/mpmc_queue.hh):
 * serial FIFO and wraparound behavior, segment growth, property
 * tests against a deque model, and multi-producer/multi-consumer
 * stress runs whose multiset of popped values must equal the pushed
 * set. The stress tests are the payload of the CI TSan job — the
 * sanitizer watches the CAS protocol while the assertions watch the
 * values.
 */

#include <algorithm>
#include <atomic>
#include <deque>
#include <map>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "tests/property.hh"
#include "util/mpmc_queue.hh"
#include "util/rng.hh"

namespace turnpike {
namespace {

TEST(MpmcQueue, StartsEmpty)
{
    MpmcQueue<int> q(4);
    int v = -1;
    EXPECT_FALSE(q.pop(v));
    EXPECT_EQ(q.segments(), 1u);
    EXPECT_EQ(q.capacity(), 4u);
}

TEST(MpmcQueue, SerialFifo)
{
    MpmcQueue<int> q(8);
    for (int i = 0; i < 8; i++)
        q.push(i);
    int v = -1;
    for (int i = 0; i < 8; i++) {
        ASSERT_TRUE(q.pop(v));
        EXPECT_EQ(v, i);
    }
    EXPECT_FALSE(q.pop(v));
}

TEST(MpmcQueue, CapacityRoundsUpToPowerOfTwo)
{
    MpmcQueue<int> q(5);
    EXPECT_EQ(q.capacity(), 8u);
    MpmcQueue<int> q1(1);
    EXPECT_EQ(q1.capacity(), 2u);
    MpmcQueue<int> q0(0);
    EXPECT_EQ(q0.capacity(), 2u);
}

TEST(MpmcQueue, WraparoundReusesOneSegment)
{
    // Interleaved push/pop never fills the ring, so the queue must
    // cycle the same cells forever instead of growing.
    MpmcQueue<int> q(4);
    int v = -1;
    for (int i = 0; i < 1000; i++) {
        q.push(i);
        ASSERT_TRUE(q.pop(v));
        EXPECT_EQ(v, i);
    }
    EXPECT_EQ(q.segments(), 1u);
}

TEST(MpmcQueue, GrowsWhenFullAndStaysFifo)
{
    MpmcQueue<int> q(4);
    const int n = 100; // 4 + 8 + 16 + 32 + 64 segments reach 100
    for (int i = 0; i < n; i++)
        q.push(i);
    EXPECT_GT(q.segments(), 1u);
    EXPECT_GE(q.capacity(), size_t(n));
    int v = -1;
    for (int i = 0; i < n; i++) {
        ASSERT_TRUE(q.pop(v));
        // Single producer: link-order draining keeps strict FIFO.
        EXPECT_EQ(v, i);
    }
    EXPECT_FALSE(q.pop(v));
}

TEST(MpmcQueue, ReusableAfterGrowthAndDrain)
{
    MpmcQueue<int> q(2);
    for (int round = 0; round < 5; round++) {
        for (int i = 0; i < 50; i++)
            q.push(round * 100 + i);
        int v = -1;
        for (int i = 0; i < 50; i++) {
            ASSERT_TRUE(q.pop(v));
            EXPECT_EQ(v, round * 100 + i);
        }
        EXPECT_FALSE(q.pop(v));
    }
}

/**
 * One random serial workload: a sequence of push/pop steps starting
 * from a small initial capacity.
 */
struct QueueScript
{
    size_t initialCap = 2;
    /** true = push (next int in sequence), false = pop. */
    std::vector<bool> steps;
};

TEST(MpmcQueueProperty, MatchesDequeModelSerially)
{
    proptest::Property<QueueScript> p;
    p.name = "queue matches a std::deque model on any serial script";
    p.iterations = 300;
    p.gen = [](Rng &rng) {
        QueueScript s;
        s.initialCap = 1 + size_t(rng.below(9));
        uint32_t n = 1 + rng.below(200);
        for (uint32_t i = 0; i < n; i++)
            s.steps.push_back(rng.below(100) < 60);
        return s;
    };
    p.holds = [](const QueueScript &s) {
        MpmcQueue<int> q(s.initialCap);
        std::deque<int> model;
        int next = 0;
        for (bool isPush : s.steps) {
            if (isPush) {
                q.push(next);
                model.push_back(next);
                next++;
                continue;
            }
            int got = -1;
            bool ok = q.pop(got);
            if (model.empty()) {
                if (ok)
                    return false; // popped from an empty queue
                continue;
            }
            // Serial, all pushes visible: pop must succeed and
            // must be FIFO.
            if (!ok || got != model.front())
                return false;
            model.pop_front();
        }
        // Drain and compare the tail.
        int got = -1;
        while (!model.empty()) {
            if (!q.pop(got) || got != model.front())
                return false;
            model.pop_front();
        }
        return !q.pop(got);
    };
    p.shrink = [](const QueueScript &s) {
        std::vector<QueueScript> out;
        if (s.steps.size() > 1) {
            QueueScript half = s;
            half.steps.resize(s.steps.size() / 2);
            out.push_back(half);
            QueueScript drop = s;
            drop.steps.pop_back();
            out.push_back(drop);
        }
        return out;
    };
    p.show = [](const QueueScript &s) {
        std::string r = "cap=" + std::to_string(s.initialCap) + " ";
        for (bool b : s.steps)
            r += b ? '+' : '-';
        return r;
    };
    checkProperty(p);
}

TEST(MpmcQueueProperty, GrowthCoversAnyBurstSize)
{
    proptest::Property<uint32_t> p;
    p.name = "a burst of N pushes always round-trips in order";
    p.iterations = 60;
    p.gen = [](Rng &rng) { return 1 + rng.below(3000); };
    p.holds = [](const uint32_t &n) {
        MpmcQueue<uint32_t> q(2);
        for (uint32_t i = 0; i < n; i++)
            q.push(i);
        uint32_t v = 0;
        for (uint32_t i = 0; i < n; i++)
            if (!q.pop(v) || v != i)
                return false;
        return !q.pop(v);
    };
    p.shrink = [](const uint32_t &n) {
        return n > 1 ? std::vector<uint32_t>{n / 2, n - 1}
                     : std::vector<uint32_t>{};
    };
    p.show = [](const uint32_t &n) { return std::to_string(n); };
    checkProperty(p);
}

/**
 * Fan @p total items from @p producers threads into @p consumers
 * threads and return every popped value. Consumers only treat
 * pop-failure as exhaustion after all producers have finished — the
 * same protocol the campaign service uses.
 */
std::vector<uint64_t>
stressRun(unsigned producers, unsigned consumers, uint64_t total,
          size_t initialCap)
{
    MpmcQueue<uint64_t> q(initialCap);
    std::atomic<uint64_t> nextItem{0};
    std::atomic<unsigned> liveProducers{producers};
    std::atomic<uint64_t> popped{0};

    std::vector<std::vector<uint64_t>> got(consumers);
    std::vector<std::thread> threads;
    for (unsigned c = 0; c < consumers; c++) {
        threads.emplace_back([&, c] {
            uint64_t v = 0;
            for (;;) {
                if (q.pop(v)) {
                    got[c].push_back(v);
                    popped.fetch_add(1);
                    continue;
                }
                if (liveProducers.load() == 0 &&
                    popped.load() >= total && !q.pop(v))
                    return;
                std::this_thread::yield();
            }
        });
    }
    for (unsigned p = 0; p < producers; p++) {
        threads.emplace_back([&] {
            for (;;) {
                uint64_t i = nextItem.fetch_add(1);
                if (i >= total)
                    break;
                q.push(i);
            }
            liveProducers.fetch_sub(1);
        });
    }
    for (auto &t : threads)
        t.join();

    std::vector<uint64_t> all;
    for (auto &g : got)
        all.insert(all.end(), g.begin(), g.end());
    return all;
}

void
expectExactlyOnce(std::vector<uint64_t> all, uint64_t total)
{
    ASSERT_EQ(all.size(), total);
    std::sort(all.begin(), all.end());
    for (uint64_t i = 0; i < total; i++)
        ASSERT_EQ(all[i], i) << "item " << i << " lost or duplicated";
}

TEST(MpmcQueueStress, SingleProducerManyConsumers)
{
    expectExactlyOnce(stressRun(1, 4, 20000, 8), 20000);
}

TEST(MpmcQueueStress, ManyProducersSingleConsumer)
{
    expectExactlyOnce(stressRun(4, 1, 20000, 8), 20000);
}

TEST(MpmcQueueStress, ManyProducersManyConsumersWithGrowth)
{
    // A tiny initial segment forces growth races under full
    // contention; every item must still arrive exactly once.
    expectExactlyOnce(stressRun(4, 4, 50000, 2), 50000);
}

TEST(MpmcQueueStress, RepeatedRoundsReuseTheQueue)
{
    MpmcQueue<uint64_t> q(4);
    for (int round = 0; round < 10; round++) {
        const uint64_t total = 5000;
        std::atomic<uint64_t> next{0};
        std::atomic<uint64_t> sum{0};
        std::atomic<uint64_t> popped{0};
        std::atomic<unsigned> live{3};
        std::vector<std::thread> threads;
        for (int c = 0; c < 3; c++) {
            threads.emplace_back([&] {
                uint64_t v = 0;
                for (;;) {
                    if (q.pop(v)) {
                        sum.fetch_add(v);
                        popped.fetch_add(1);
                        continue;
                    }
                    if (live.load() == 0 && popped.load() >= total &&
                        !q.pop(v))
                        return;
                    std::this_thread::yield();
                }
            });
        }
        for (int p = 0; p < 3; p++) {
            threads.emplace_back([&] {
                for (;;) {
                    uint64_t i = next.fetch_add(1);
                    if (i >= total)
                        break;
                    q.push(i);
                }
                live.fetch_sub(1);
            });
        }
        for (auto &t : threads)
            t.join();
        EXPECT_EQ(sum.load(), total * (total - 1) / 2)
            << "round " << round;
        uint64_t leftover = 0;
        EXPECT_FALSE(q.pop(leftover));
    }
}

} // namespace
} // namespace turnpike
