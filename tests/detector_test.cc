/**
 * @file
 * Detector-zoo tests (sim/detector.hh, the noisy trial-fault model
 * and their integration with the pipeline, the AVF campaign and
 * replay):
 *
 *  - property tests (tests/property.hh) pinning the codec laws:
 *    SECDED corrects any single flip and detects any double flip,
 *    the LDPC code corrects any <= 3 flips, never calls a 4-flip
 *    word Clean and always detects an adjacent 4-bit burst, and
 *    neither codec ever miscorrects inside its guarantee radius;
 *  - the closed-form strikeEffect table the pipeline consults;
 *  - noisy-sensor determinism and the append-only RNG contract: the
 *    default TrialNoise reproduces the legacy fault stream
 *    byte-for-byte;
 *  - zoo integrity, --protect override parsing;
 *  - pipeline integration: ECC-corrected strikes leave no trace on
 *    the architectural results, spurious detections corrupt nothing;
 *  - the false-positive outcome class: a spurious recovery is
 *    FalsePos, never Recovered (regression for the coverage
 *    inflation bug), in campaigns and replay alike;
 *  - a differential check: for every zoo detector and every fault
 *    target, the campaign's classification equals a brute-force
 *    golden-diff re-derivation from re-executed trials;
 *  - campaign determinism at TURNPIKE_JOBS=1 vs 3 under a noisy
 *    detector.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <sstream>

#include "core/avf.hh"
#include "core/replay.hh"
#include "tests/property.hh"
#include "workloads/suite.hh"

namespace turnpike {
namespace {

using proptest::Property;
using proptest::checkProperty;
using proptest::shrinkToFixpoint;

// ---------------------------------------------------------------- levels

TEST(ProtectLevel, NamesRoundTrip)
{
    for (int i = 0; i < kNumProtectLevels; i++) {
        ProtectLevel l = static_cast<ProtectLevel>(i);
        ProtectLevel parsed;
        ASSERT_TRUE(parseProtectLevel(protectLevelName(l), parsed))
            << protectLevelName(l);
        EXPECT_EQ(parsed, l);
    }
    ProtectLevel out;
    EXPECT_FALSE(parseProtectLevel("hamming", out));
    EXPECT_FALSE(parseProtectLevel("", out));
    EXPECT_FALSE(parseProtectLevel("PARITY", out));
}

TEST(StrikeEffectTable, MatchesCodecGuarantees)
{
    using PL = ProtectLevel;
    using SE = StrikeEffect;
    // A zero-width burst never lands anywhere.
    for (int i = 0; i < kNumProtectLevels; i++)
        EXPECT_EQ(strikeEffect(static_cast<PL>(i), 0), SE::Corrected);

    for (uint32_t b = 1; b <= 6; b++)
        EXPECT_EQ(strikeEffect(PL::None, b), SE::Silent) << b;

    EXPECT_EQ(strikeEffect(PL::Parity, 1), SE::Detected);
    EXPECT_EQ(strikeEffect(PL::Parity, 2), SE::Silent);
    EXPECT_EQ(strikeEffect(PL::Parity, 3), SE::Detected);
    EXPECT_EQ(strikeEffect(PL::Parity, 4), SE::Silent);

    EXPECT_EQ(strikeEffect(PL::Secded, 1), SE::Corrected);
    EXPECT_EQ(strikeEffect(PL::Secded, 2), SE::Detected);
    EXPECT_EQ(strikeEffect(PL::Secded, 3), SE::Silent);

    EXPECT_EQ(strikeEffect(PL::Ldpc, 1), SE::Corrected);
    EXPECT_EQ(strikeEffect(PL::Ldpc, 2), SE::Corrected);
    EXPECT_EQ(strikeEffect(PL::Ldpc, 3), SE::Corrected);
    EXPECT_EQ(strikeEffect(PL::Ldpc, 4), SE::Detected);
    EXPECT_EQ(strikeEffect(PL::Ldpc, 5), SE::Silent);
}

// ------------------------------------------------------- property harness

TEST(PropertyHarness, ShrinksToMinimalCounterexample)
{
    // A deliberately failing law (v < 10) with a halving/decrement
    // shrinker must shrink any failing draw to exactly 10.
    Property<uint64_t> p;
    p.holds = [](const uint64_t &v) { return v < 10; };
    p.shrink = [](const uint64_t &v) {
        std::vector<uint64_t> out;
        if (v > 0) {
            out.push_back(v / 2);
            out.push_back(v - 1);
        }
        return out;
    };
    EXPECT_EQ(shrinkToFixpoint(p, uint64_t(1000)), 10u);
    EXPECT_EQ(shrinkToFixpoint(p, uint64_t(11)), 10u);
    EXPECT_EQ(shrinkToFixpoint(p, uint64_t(10)), 10u);
}

TEST(PropertyHarness, PassingPropertyRunsAllIterations)
{
    uint32_t calls = 0;
    Property<uint64_t> p;
    p.iterations = 57;
    p.gen = [&](Rng &rng) {
        calls++;
        return rng.next();
    };
    p.holds = [](const uint64_t &) { return true; };
    EXPECT_TRUE(checkProperty(p));
    EXPECT_EQ(calls, 57u);
}

// ------------------------------------------------------------ SECDED laws

TEST(SecdedProperty, CleanRoundTrip)
{
    Property<uint64_t> p;
    p.name = "secded: encode/decode of an untouched word is Clean";
    p.gen = [](Rng &rng) { return rng.next(); };
    p.holds = [](const uint64_t &v) {
        DecodeResult r = secdedDecode(secdedEncode(v));
        return r.status == DecodeStatus::Clean && r.data == v;
    };
    p.show = [](const uint64_t &v) { return std::to_string(v); };
    checkProperty(p);
}

TEST(SecdedProperty, CorrectsAnySingleFlip)
{
    // Exhaustive in the flip position, random in the data.
    Rng rng(99);
    for (uint32_t k = 0; k < kSecdedBits; k++) {
        uint64_t v = rng.next();
        SecdedWord w = secdedEncode(v);
        w.flip(k);
        DecodeResult r = secdedDecode(w);
        ASSERT_EQ(r.status, DecodeStatus::Corrected) << "bit " << k;
        ASSERT_EQ(r.data, v) << "bit " << k;
        ASSERT_EQ(r.corrected, 1u) << "bit " << k;
    }
}

TEST(SecdedProperty, DetectsAnyDoubleFlip)
{
    struct Case
    {
        uint64_t v;
        uint32_t a, b;
    };
    Property<Case> p;
    p.name = "secded: any two distinct flips are Detected";
    p.iterations = 400;
    p.gen = [](Rng &rng) {
        Case c;
        c.v = rng.next();
        c.a = static_cast<uint32_t>(rng.below(kSecdedBits));
        do {
            c.b = static_cast<uint32_t>(rng.below(kSecdedBits));
        } while (c.b == c.a);
        return c;
    };
    p.holds = [](const Case &c) {
        SecdedWord w = secdedEncode(c.v);
        w.flip(c.a);
        w.flip(c.b);
        return secdedDecode(w).status == DecodeStatus::Detected;
    };
    p.shrink = [](const Case &c) {
        // Shrink the data word toward zero; the flip pair is the
        // interesting part and stays fixed.
        std::vector<Case> out;
        if (c.v)
            out.push_back({c.v / 2, c.a, c.b});
        return out;
    };
    p.show = [](const Case &c) {
        return "v=" + std::to_string(c.v) + " flips {" +
            std::to_string(c.a) + "," + std::to_string(c.b) + "}";
    };
    checkProperty(p);
}

TEST(SecdedProperty, NeverSilentlyWrongWithinRadius)
{
    // With <= 2 flips the decoder must either hand back the original
    // data or say Detected — returning corrupted data as
    // Clean/Corrected would defeat the code's whole purpose.
    struct Case
    {
        uint64_t v;
        std::vector<uint32_t> flips;
    };
    Property<Case> p;
    p.name = "secded: <= 2 flips never silently wrong";
    p.iterations = 400;
    p.gen = [](Rng &rng) {
        Case c;
        c.v = rng.next();
        uint32_t n = 1 + static_cast<uint32_t>(rng.below(2));
        std::set<uint32_t> used;
        while (used.size() < n)
            used.insert(static_cast<uint32_t>(
                rng.below(kSecdedBits)));
        c.flips.assign(used.begin(), used.end());
        return c;
    };
    p.holds = [](const Case &c) {
        SecdedWord w = secdedEncode(c.v);
        for (uint32_t k : c.flips)
            w.flip(k);
        DecodeResult r = secdedDecode(w);
        return r.status == DecodeStatus::Detected || r.data == c.v;
    };
    p.show = [](const Case &c) {
        std::string s = "v=" + std::to_string(c.v) + " flips {";
        for (uint32_t k : c.flips)
            s += std::to_string(k) + ",";
        return s + "}";
    };
    checkProperty(p);
}

// -------------------------------------------------------------- LDPC laws

std::vector<uint32_t>
distinctFlips(Rng &rng, uint32_t n, uint32_t bits)
{
    std::set<uint32_t> used;
    while (used.size() < n)
        used.insert(static_cast<uint32_t>(rng.below(bits)));
    return {used.begin(), used.end()};
}

TEST(LdpcProperty, CleanRoundTrip)
{
    Property<uint64_t> p;
    p.name = "ldpc: encode/decode of an untouched word is Clean";
    p.gen = [](Rng &rng) { return rng.next(); };
    p.holds = [](const uint64_t &v) {
        DecodeResult r = ldpcDecode(ldpcEncode(v));
        return r.status == DecodeStatus::Clean && r.data == v;
    };
    checkProperty(p);
}

TEST(LdpcProperty, CorrectsUpToThreeFlipsAnywhere)
{
    struct Case
    {
        uint64_t v;
        std::vector<uint32_t> flips;
    };
    Property<Case> p;
    p.name = "ldpc: any 1..3 distinct flips are corrected";
    p.iterations = 600;
    p.gen = [](Rng &rng) {
        Case c;
        c.v = rng.next();
        c.flips = distinctFlips(
            rng, 1 + static_cast<uint32_t>(rng.below(3)), kLdpcBits);
        return c;
    };
    p.holds = [](const Case &c) {
        LdpcWord w = ldpcEncode(c.v);
        for (uint32_t k : c.flips)
            w.flip(k);
        DecodeResult r = ldpcDecode(w);
        return r.status == DecodeStatus::Corrected && r.data == c.v &&
            r.corrected == c.flips.size();
    };
    p.shrink = [](const Case &c) {
        // Drop one flip at a time: a smaller failing flip set is
        // always more informative.
        std::vector<Case> out;
        for (size_t i = 0; i < c.flips.size(); i++) {
            Case s = c;
            s.flips.erase(s.flips.begin() +
                          static_cast<long>(i));
            if (!s.flips.empty())
                out.push_back(std::move(s));
        }
        if (c.v)
            out.push_back({c.v / 2, c.flips});
        return out;
    };
    p.show = [](const Case &c) {
        std::string s = "v=" + std::to_string(c.v) + " flips {";
        for (uint32_t k : c.flips)
            s += std::to_string(k) + ",";
        return s + "}";
    };
    checkProperty(p);
}

TEST(LdpcProperty, FourFlipsNeverPassAsClean)
{
    // Four arbitrary flips sit outside the correction radius: the
    // decoder may repair them, flag them, or (rarely — the pattern
    // can alias to a different <= 3-error pattern, unavoidable at
    // minimum distance 7) miscorrect. What it must never do is call
    // the word Clean: 4 < d, so the syndrome cannot vanish.
    struct Case
    {
        uint64_t v;
        std::vector<uint32_t> flips;
    };
    Property<Case> p;
    p.name = "ldpc: 4 distinct flips never decode as Clean";
    p.iterations = 600;
    p.gen = [](Rng &rng) {
        Case c;
        c.v = rng.next();
        c.flips = distinctFlips(rng, 4, kLdpcBits);
        return c;
    };
    p.holds = [](const Case &c) {
        LdpcWord w = ldpcEncode(c.v);
        for (uint32_t k : c.flips)
            w.flip(k);
        DecodeResult r = ldpcDecode(w);
        if (r.status == DecodeStatus::Clean)
            return false;
        // A claimed repair outside the radius never claims more
        // corrections than the guarantee covers.
        return r.status != DecodeStatus::Corrected ||
            r.corrected <= 3;
    };
    checkProperty(p);
}

TEST(LdpcProperty, AdjacentDataBurstOfFourIsDetected)
{
    // The pipeline's closed-form model says an adjacent 4-bit burst
    // in a protected word is Detected; the real codec must agree at
    // every offset (including bursts wrapping mod 64).
    Rng rng(7);
    for (uint32_t start = 0; start < 64; start++) {
        uint64_t v = rng.next();
        LdpcWord w = ldpcEncode(v);
        for (uint32_t i = 0; i < 4; i++)
            w.flip((start + i) & 63);
        EXPECT_EQ(ldpcDecode(w).status, DecodeStatus::Detected)
            << "burst at bit " << start;
    }
}

// ------------------------------------------------------- noisy trial model

TEST(TrialNoiseModel, DefaultNoiseReproducesLegacyStream)
{
    const auto &targets = allFaultTargets();
    for (uint32_t t = 0; t < 64; t++) {
        FaultEvent legacy =
            makeTrialFault(31, t, 9000, 20, targets, 0.3);
        FaultEvent with_default =
            makeTrialFault(31, t, 9000, 20, targets, 0.3, {});
        EXPECT_EQ(legacy.cycle, with_default.cycle);
        EXPECT_EQ(legacy.target, with_default.target);
        EXPECT_EQ(legacy.index, with_default.index);
        EXPECT_EQ(legacy.bit, with_default.bit);
        EXPECT_EQ(legacy.detectDelay, with_default.detectDelay);
        EXPECT_EQ(legacy.detected, with_default.detected);
        EXPECT_EQ(with_default.burst, 1u);
        EXPECT_FALSE(with_default.spurious);
    }
}

TEST(TrialNoiseModel, NoisyDrawsAreAppendOnly)
{
    // Noise knobs that draw nothing extra before the legacy fields
    // must leave those fields untouched: filter latency only adds to
    // the delay, a burst range only appends a draw.
    const auto &targets = allFaultTargets();
    TrialNoise filter;
    filter.filterLatency = 5;
    TrialNoise burst;
    burst.maxBurst = 4;
    for (uint32_t t = 0; t < 64; t++) {
        FaultEvent legacy =
            makeTrialFault(77, t, 9000, 20, targets, 0.25);
        FaultEvent f =
            makeTrialFault(77, t, 9000, 20, targets, 0.25, filter);
        EXPECT_EQ(f.cycle, legacy.cycle);
        EXPECT_EQ(f.target, legacy.target);
        EXPECT_EQ(f.index, legacy.index);
        EXPECT_EQ(f.bit, legacy.bit);
        EXPECT_EQ(f.detected, legacy.detected);
        EXPECT_EQ(f.detectDelay, legacy.detectDelay + 5);

        FaultEvent b =
            makeTrialFault(77, t, 9000, 20, targets, 0.25, burst);
        EXPECT_EQ(b.cycle, legacy.cycle);
        EXPECT_EQ(b.target, legacy.target);
        EXPECT_EQ(b.bit, legacy.bit);
        EXPECT_EQ(b.detected, legacy.detected);
        EXPECT_GE(b.burst, 1u);
        EXPECT_LE(b.burst, 4u);
    }
}

TEST(TrialNoiseModel, DeterministicAndRatesBite)
{
    const auto &targets = allFaultTargets();
    TrialNoise noisy;
    noisy.falsePosRate = 0.3;
    noisy.falseNegRate = 0.4;
    noisy.maxBurst = 3;
    noisy.filterLatency = 2;
    uint32_t spurious = 0, missed = 0;
    bool any_wide_burst = false;
    for (uint32_t t = 0; t < 200; t++) {
        FaultEvent a =
            makeTrialFault(5, t, 9000, 20, targets, 0.0, noisy);
        FaultEvent b =
            makeTrialFault(5, t, 9000, 20, targets, 0.0, noisy);
        ASSERT_EQ(a.cycle, b.cycle);
        ASSERT_EQ(a.spurious, b.spurious);
        ASSERT_EQ(a.burst, b.burst);
        ASSERT_EQ(a.detected, b.detected);
        if (a.spurious) {
            spurious++;
            // A spurious "strike" hits nothing and is always heard.
            EXPECT_TRUE(a.detected);
            EXPECT_EQ(a.burst, 0u);
        } else if (!a.detected) {
            missed++;
        }
        any_wide_burst |= a.burst > 1;
    }
    // With rates 0.3/0.4 over 200 trials these are overwhelmingly
    // likely; the draws are deterministic, so no flakiness.
    EXPECT_GT(spurious, 20u);
    EXPECT_GT(missed, 20u);
    EXPECT_TRUE(any_wide_burst);
}

TEST(TrialNoiseModel, FalsePosRateOneMakesEveryTrialSpurious)
{
    const auto &targets = allFaultTargets();
    TrialNoise noise;
    noise.falsePosRate = 1.0;
    for (uint32_t t = 0; t < 32; t++) {
        FaultEvent ev =
            makeTrialFault(13, t, 9000, 20, targets, 0.5, noise);
        EXPECT_TRUE(ev.spurious);
        EXPECT_TRUE(ev.detected);
        EXPECT_EQ(ev.burst, 0u);
    }
}

TEST(TrialNoiseModel, FalseNegRateOneMissesEveryStrike)
{
    const auto &targets = allFaultTargets();
    TrialNoise noise;
    noise.falseNegRate = 1.0;
    for (uint32_t t = 0; t < 32; t++) {
        FaultEvent ev =
            makeTrialFault(13, t, 9000, 20, targets, 0.0, noise);
        EXPECT_FALSE(ev.detected);
        EXPECT_FALSE(ev.spurious);
    }
}

// ------------------------------------------------------------------- zoo

TEST(DetectorZoo, NamesAreUniqueAndResolvable)
{
    const auto &zoo = detectorZoo();
    ASSERT_GE(zoo.size(), 6u);
    std::set<std::string> names;
    for (const DetectorConfig &d : zoo) {
        EXPECT_TRUE(names.insert(d.label).second)
            << "duplicate zoo label " << d.label;
        DetectorConfig out;
        ASSERT_TRUE(detectorByName(d.label, out)) << d.label;
        EXPECT_EQ(out.label, d.label);
    }
    DetectorConfig out;
    EXPECT_FALSE(detectorByName("no-such-detector", out));
    // The error-message list mentions every zoo member.
    std::string all = detectorZooNames();
    for (const DetectorConfig &d : zoo)
        EXPECT_NE(all.find(d.label), std::string::npos) << d.label;
}

TEST(DetectorZoo, DefaultIsTheLegacyPaperModel)
{
    DetectorConfig def;
    EXPECT_TRUE(def.isLegacy());
    DetectorConfig zoo_default;
    ASSERT_TRUE(detectorByName("acoustic-parity", zoo_default));
    EXPECT_TRUE(zoo_default.isLegacy());
    DetectorConfig noisy;
    ASSERT_TRUE(detectorByName("noisy-sensor", noisy));
    EXPECT_FALSE(noisy.isLegacy());
    DetectorConfig secded;
    ASSERT_TRUE(detectorByName("secded-full", secded));
    EXPECT_FALSE(secded.isLegacy());
}

TEST(DetectorZoo, ProtectOverrideParsing)
{
    DetectorConfig det;
    ASSERT_TRUE(applyProtectOverride(det, "reg=ldpc"));
    EXPECT_EQ(det.reg, ProtectLevel::Ldpc);
    ASSERT_TRUE(applyProtectOverride(det, "sb=secded"));
    EXPECT_EQ(det.sb, ProtectLevel::Secded);
    ASSERT_TRUE(applyProtectOverride(det, "cache=parity"));
    EXPECT_EQ(det.cache, ProtectLevel::Parity);
    // Overrides relabel so reports stay distinguishable.
    EXPECT_NE(det.label, DetectorConfig().label);
    EXPECT_NE(det.label.find("cache=parity"), std::string::npos);

    for (const char *bad :
         {"", "reg", "reg=", "=parity", "reg=banana", "pc=parity",
          "reg=parity=extra"}) {
        DetectorConfig fresh;
        EXPECT_FALSE(applyProtectOverride(fresh, bad)) << bad;
    }
}

// -------------------------------------------------- pipeline integration

RunOptions
trialOptions(const RunResult &golden)
{
    return RunOptions(avfCycleBudget(8, golden.pipe.cycles),
                      /*allow_no_halt=*/true);
}

TEST(PipelineIntegration, SecdedCorrectsRegisterStrikeInPlace)
{
    const WorkloadSpec &spec = findWorkload("CPU2006", "mcf");
    ResilienceConfig cfg = ResilienceConfig::turnpike(10);
    cfg.detector.reg = ProtectLevel::Secded;
    RunResult golden = runWorkload(spec, cfg, 3000);

    FaultEvent ev;
    ev.target = FaultTarget::Register;
    ev.cycle = golden.pipe.cycles / 2;
    ev.index = 5;
    ev.bit = 17;
    ev.detected = false; // isolate the ECC from the acoustic path
    RunResult run =
        runWorkload(spec, cfg, 3000, {ev}, trialOptions(golden));
    ASSERT_TRUE(run.halted);
    EXPECT_EQ(run.pipe.eccCorrected, 1u);
    EXPECT_EQ(run.pipe.eccDetected, 0u);
    EXPECT_EQ(run.pipe.recoveries, 0u);
    EXPECT_EQ(run.dataHash, golden.dataHash);
    EXPECT_EQ(run.archHash, golden.archHash);
    EXPECT_EQ(classifyOutcome(golden, run), FaultOutcome::Masked);
}

TEST(PipelineIntegration, UnprotectedRegisterStrikeStillCorrupts)
{
    // Same strike, protection stripped: the sensor miss now leaves
    // the corruption in place (whatever the downstream outcome, the
    // ECC counters must stay zero and the flip must land).
    const WorkloadSpec &spec = findWorkload("CPU2006", "mcf");
    ResilienceConfig cfg = ResilienceConfig::turnpike(10);
    cfg.detector.reg = ProtectLevel::None;
    RunResult golden = runWorkload(spec, cfg, 3000);

    FaultEvent ev;
    ev.target = FaultTarget::Register;
    ev.cycle = golden.pipe.cycles / 2;
    ev.index = 5;
    ev.bit = 17;
    ev.detected = false;
    RunResult run =
        runWorkload(spec, cfg, 3000, {ev}, trialOptions(golden));
    EXPECT_EQ(run.pipe.eccCorrected, 0u);
    EXPECT_EQ(run.pipe.eccDetected, 0u);
}

TEST(PipelineIntegration, SpuriousDetectionCorruptsNothing)
{
    const WorkloadSpec &spec = findWorkload("CPU2006", "mcf");
    ResilienceConfig cfg = ResilienceConfig::turnpike(10);
    RunResult golden = runWorkload(spec, cfg, 3000);

    FaultEvent ev;
    ev.spurious = true;
    ev.detected = true;
    ev.cycle = golden.pipe.cycles / 2;
    ev.detectDelay = 3;
    RunResult run =
        runWorkload(spec, cfg, 3000, {ev}, trialOptions(golden));
    ASSERT_TRUE(run.halted);
    EXPECT_EQ(run.pipe.falseAlarms, 1u);
    EXPECT_GE(run.pipe.recoveries, 1u);
    EXPECT_EQ(run.dataHash, golden.dataHash);
    EXPECT_EQ(run.archHash, golden.archHash);
}

// --------------------------------------------- false-positive regression

TEST(ClassifyOutcome, SpuriousTrialsAreFalsePosNotRecovered)
{
    RunResult golden;
    golden.halted = true;
    golden.dataHash = 0xaaa;
    golden.archHash = 0xbbb;
    golden.pipe.insts = 100;

    RunResult faulty = golden;
    faulty.pipe.recoveries = 1;
    // Regression: a spurious recovery that lands on the golden image
    // used to be credited as Recovered, inflating apparent coverage.
    EXPECT_EQ(classifyOutcome(golden, faulty, /*spurious=*/true),
              FaultOutcome::FalsePos);
    EXPECT_EQ(classifyOutcome(golden, faulty, /*spurious=*/false),
              FaultOutcome::Recovered);

    RunResult diverged = faulty;
    diverged.dataHash = 0xdead;
    EXPECT_EQ(classifyOutcome(golden, diverged, /*spurious=*/true),
              FaultOutcome::Sdc);

    RunResult hung = faulty;
    hung.halted = false;
    EXPECT_EQ(classifyOutcome(golden, hung, /*spurious=*/true),
              FaultOutcome::Hang);
}

TEST(FalsePositiveCampaign, AllSpuriousTrialsClassifyFalsePos)
{
    AvfCampaignConfig cfg;
    cfg.spec = findWorkload("SPLASH3", "radix");
    cfg.scheme = ResilienceConfig::turnpike(10);
    cfg.scheme.detector.falsePosRate = 1.0;
    cfg.scheme.detector.label = "always-crying-wolf";
    cfg.icount = 3000;
    cfg.trials = 10;
    cfg.seed = 4242;

    AvfReport rep = runAvfCampaign(cfg);
    EXPECT_EQ(rep.falsePositives(), 10u);
    EXPECT_EQ(rep.outcomeTotal(FaultOutcome::Recovered), 0u);
    EXPECT_EQ(rep.outcomeTotal(FaultOutcome::Sdc), 0u);
    EXPECT_EQ(rep.vulnerability(), 0.0);
    EXPECT_EQ(rep.falseAlarmEvents, 10u);
    for (const AvfTrial &t : rep.perTrial) {
        EXPECT_TRUE(t.fault.spurious);
        EXPECT_EQ(t.outcome, FaultOutcome::FalsePos);
    }
    // The false-positive column reaches the rendered report too.
    EXPECT_NE(avfReportTable(rep).find("false-pos"),
              std::string::npos);
}

TEST(FalsePositiveCampaign, ExportCarriesFalsePositivesAndDetector)
{
    AvfCampaignConfig cfg;
    cfg.spec = findWorkload("SPLASH3", "radix");
    cfg.scheme = ResilienceConfig::turnpike(10);
    ASSERT_TRUE(detectorByName("noisy-sensor",
                               cfg.scheme.detector));
    cfg.icount = 3000;
    cfg.trials = 8;
    cfg.seed = 77;

    AvfReport rep = runAvfCampaign(cfg);
    StatRegistry reg;
    exportAvfStats(reg, rep);
    std::ostringstream out;
    reg.dumpJson(out, /*include_host=*/false);
    const std::string dump = out.str();
    for (const char *key :
         {"avf.falsePositives", "avf.outcome.false-pos",
          "detector.protect.reg", "detector.false_pos_rate",
          "detector.filter_latency", "detector.max_burst",
          "detector.ecc_corrected", "detector.ecc_detected",
          "detector.false_alarms"})
        EXPECT_NE(dump.find(key), std::string::npos) << key;
    EXPECT_NE(dump.find("noisy-sensor"), std::string::npos);
}

TEST(FalsePositiveReplay, ReplayAgreesWithCampaign)
{
    AvfCampaignConfig cfg;
    cfg.spec = findWorkload("SPLASH3", "radix");
    cfg.scheme = ResilienceConfig::turnpike(10);
    ASSERT_TRUE(detectorByName("noisy-sensor",
                               cfg.scheme.detector));
    cfg.scheme.detector.falsePosRate = 0.5; // plenty of both kinds
    cfg.icount = 3000;
    cfg.trials = 8;
    cfg.seed = 31337;

    AvfReport rep = runAvfCampaign(cfg);
    TrialReplayer replayer(cfg);
    bool saw_false_pos = false;
    for (uint32_t t = 0; t < cfg.trials; t++) {
        ReplayedTrial rt = replayer.replay(t);
        EXPECT_EQ(rt.fault.spurious, rep.perTrial[t].fault.spurious)
            << "trial " << t;
        EXPECT_EQ(rt.fault.burst, rep.perTrial[t].fault.burst)
            << "trial " << t;
        EXPECT_EQ(rt.outcome, rep.perTrial[t].outcome)
            << "trial " << t;
        saw_false_pos |= rt.outcome == FaultOutcome::FalsePos;
    }
    EXPECT_TRUE(saw_false_pos)
        << "seed 31337 should produce at least one spurious trial";
}

// --------------------------------------------------- differential check

/**
 * Brute-force reference classifier: re-derive the taxonomy directly
 * from a re-executed run's hashes, independent of classifyOutcome's
 * internal structure.
 */
FaultOutcome
referenceClassify(const RunResult &golden, const RunResult &run,
                  const FaultEvent &ev)
{
    if (!run.halted)
        return FaultOutcome::Hang;
    bool image_ok = run.dataHash == golden.dataHash;
    bool arch_ok = run.archHash == golden.archHash;
    if (ev.spurious)
        return image_ok && arch_ok ? FaultOutcome::FalsePos
                                   : FaultOutcome::Sdc;
    if (run.pipe.recoveries > 0)
        return image_ok ? FaultOutcome::Recovered : FaultOutcome::Sdc;
    return image_ok && arch_ok && run.pipe.insts == golden.pipe.insts
        ? FaultOutcome::Masked
        : FaultOutcome::Sdc;
}

TEST(DifferentialTaxonomy, EveryZooDetectorEveryTarget)
{
    // For every zoo detector and every fault target: run a tiny
    // campaign, then brute-force re-execute each trial's fault and
    // re-derive its class by direct golden-diff. The campaign's
    // classification must agree everywhere.
    const WorkloadSpec &spec = findWorkload("SPLASH3", "radix");
    for (const DetectorConfig &det : detectorZoo()) {
        for (FaultTarget target : allFaultTargets()) {
            AvfCampaignConfig cfg;
            cfg.spec = spec;
            cfg.scheme = ResilienceConfig::turnpike(10);
            cfg.scheme.detector = det;
            cfg.icount = 2000;
            cfg.trials = 2;
            cfg.seed = 555 + static_cast<uint64_t>(target);
            cfg.sensorMissRate = 0.3;
            cfg.targets = {target};

            SCOPED_TRACE(det.label + std::string(" / ") +
                         faultTargetName(target));
            AvfReport rep = runAvfCampaign(cfg);
            RunResult golden = runWorkload(spec, cfg.scheme,
                                           cfg.icount);
            ASSERT_EQ(rep.perTrial.size(), cfg.trials);
            for (const AvfTrial &trial : rep.perTrial) {
                RunOptions opts(rep.cycleBudget,
                                /*allow_no_halt=*/true);
                RunResult rerun = runWorkload(
                    spec, cfg.scheme, cfg.icount, {trial.fault},
                    opts);
                EXPECT_EQ(trial.outcome,
                          referenceClassify(golden, rerun,
                                            trial.fault));
            }
        }
    }
}

// ------------------------------------------------------------ determinism

TEST(NoisyCampaignDeterminism, IdenticalAtJobs1And3)
{
    AvfCampaignConfig cfg;
    cfg.spec = findWorkload("CPU2006", "mcf");
    cfg.scheme = ResilienceConfig::turnpike(10);
    ASSERT_TRUE(detectorByName("noisy-sensor",
                               cfg.scheme.detector));
    cfg.scheme.detector.maxBurst = 4;
    cfg.icount = 3000;
    cfg.trials = 12;
    cfg.seed = 2026;
    cfg.sensorMissRate = 0.2;

    const char *saved = std::getenv("TURNPIKE_JOBS");
    std::string saved_val = saved ? saved : "";
    setenv("TURNPIKE_JOBS", "1", 1);
    AvfReport serial = runAvfCampaign(cfg);
    setenv("TURNPIKE_JOBS", "3", 1);
    AvfReport parallel = runAvfCampaign(cfg);
    if (saved)
        setenv("TURNPIKE_JOBS", saved_val.c_str(), 1);
    else
        unsetenv("TURNPIKE_JOBS");

    ASSERT_EQ(serial.perTrial.size(), parallel.perTrial.size());
    for (size_t t = 0; t < serial.perTrial.size(); t++) {
        EXPECT_EQ(serial.perTrial[t].outcome,
                  parallel.perTrial[t].outcome) << "trial " << t;
        EXPECT_EQ(serial.perTrial[t].fault.spurious,
                  parallel.perTrial[t].fault.spurious);
        EXPECT_EQ(serial.perTrial[t].fault.burst,
                  parallel.perTrial[t].fault.burst);
    }
    EXPECT_EQ(serial.eccCorrected, parallel.eccCorrected);
    EXPECT_EQ(serial.eccDetected, parallel.eccDetected);
    EXPECT_EQ(serial.falseAlarmEvents, parallel.falseAlarmEvents);
}

} // namespace
} // namespace turnpike
