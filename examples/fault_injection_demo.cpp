/**
 * @file
 * Fault-injection demo: strike the core with single-event upsets
 * while it runs, watch the acoustic sensors detect them within the
 * WCDL, and verify that region-level recovery restores the exact
 * golden result — then show what goes wrong when the hardware
 * coloring safeguard (paper Fig. 16) is turned off.
 */

#include <cstdio>

#include "core/runner.hh"
#include "util/rng.hh"
#include "util/table.hh"

using namespace turnpike;

namespace {

void
sweep(const char *title, const ResilienceConfig &cfg,
      const RunResult &clean, const WorkloadSpec &spec,
      uint64_t insts, int trials)
{
    int recovered = 0, diverged = 0;
    uint64_t recoveries = 0;
    for (int t = 0; t < trials; t++) {
        Rng rng(1000 + static_cast<uint64_t>(t));
        auto plan = makeFaultPlan(rng, clean.pipe.cycles, cfg.wcdl, 3);
        RunResult r = runWorkload(spec, cfg, insts, plan);
        recoveries += r.pipe.recoveries;
        if (r.dataHash == clean.goldenHash)
            recovered++;
        else
            diverged++;
    }
    std::printf("  %-28s %3d/%d runs produced the golden image "
                "(%llu recoveries total)\n",
                title, recovered, trials,
                static_cast<unsigned long long>(recoveries));
    if (diverged > 0)
        std::printf("  %-28s %d runs DIVERGED — silent data "
                    "corruption!\n", "", diverged);
}

} // namespace

int
main()
{
    const WorkloadSpec &spec = findWorkload("SPLASH3", "radix");
    constexpr uint64_t kInsts = 50000;
    constexpr uint32_t kWcdl = 20;
    constexpr int kTrials = 15;

    std::printf("Fault-injection demo on %s/%s (WCDL=%u, %d trials "
                "of 3 upsets each)\n\n",
                spec.suite.c_str(), spec.name.c_str(), kWcdl,
                kTrials);

    ResilienceConfig turnpike_cfg = ResilienceConfig::turnpike(kWcdl);
    RunResult clean = runWorkload(spec, turnpike_cfg, kInsts);
    std::printf("fault-free run: %llu cycles, golden hash "
                "%016llx\n\n",
                static_cast<unsigned long long>(clean.pipe.cycles),
                static_cast<unsigned long long>(clean.goldenHash));

    std::printf("1) Full Turnpike (WAR-free release + hardware "
                "coloring):\n");
    sweep("turnpike", turnpike_cfg, clean, spec, kInsts, kTrials);

    std::printf("\n2) Turnstile (everything quarantined until "
                "verified):\n");
    ResilienceConfig ts = ResilienceConfig::turnstile(kWcdl);
    RunResult ts_clean = runWorkload(spec, ts, kInsts);
    sweep("turnstile", ts, ts_clean, spec, kInsts, kTrials);

    std::printf("\n3) UNSAFE: checkpoints released without coloring "
                "(the Fig. 16 hazard):\n");
    ResilienceConfig naive = turnpike_cfg;
    naive.label = "naive-ckpt-release";
    naive.hwColoring = false;
    naive.naiveCkptRelease = true;
    sweep("naive release", naive, clean, spec, kInsts, kTrials);

    std::printf("\nAn unverified (possibly corrupt) checkpoint that "
                "overwrites the only verified\ncopy of a register "
                "breaks recovery; Turnpike's per-register color "
                "pool keeps the\nverified copy intact at ~40 bytes "
                "of state.\n");
    return 0;
}
