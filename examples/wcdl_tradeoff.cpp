/**
 * @file
 * Sensor provisioning trade-off: sweep the number of deployed
 * acoustic sensors, derive the worst-case detection latency from
 * the Fig. 18 model, and show what that WCDL costs Turnstile versus
 * Turnpike on a chosen workload — the decision a chip architect
 * would actually make (sensor area vs run-time overhead).
 */

#include <cstdio>

#include "core/runner.hh"
#include "sim/sensors.hh"
#include "util/table.hh"

using namespace turnpike;

int
main(int argc, char **argv)
{
    const char *suite = argc > 2 ? argv[1] : "CPU2006";
    const char *name = argc > 2 ? argv[2] : "libquan";
    const WorkloadSpec &spec = findWorkload(suite, name);
    constexpr uint64_t kInsts = 60000;
    constexpr double kClockGhz = 2.5;

    std::printf("Sensor provisioning trade-off on %s/%s "
                "(%.1f GHz, 1 mm^2 die)\n\n",
                spec.suite.c_str(), spec.name.c_str(), kClockGhz);

    RunResult base = runWorkload(spec, ResilienceConfig::baseline(),
                                 kInsts);
    double b = static_cast<double>(base.pipe.cycles);

    Table table({"sensors", "area", "WCDL", "Turnstile", "Turnpike"});
    for (uint32_t sensors : {300u, 150u, 75u, 40u, 20u, 10u}) {
        SensorConfig sc{sensors, kClockGhz, 1.0};
        uint32_t wcdl = worstCaseDetectionLatency(sc);
        RunResult ts = runWorkload(
            spec, ResilienceConfig::turnstile(wcdl), kInsts);
        RunResult tp = runWorkload(
            spec, ResilienceConfig::turnpike(wcdl), kInsts);
        table.addRow({
            cell(static_cast<uint64_t>(sensors)),
            pct(sensorAreaOverhead(sc), 2),
            cell(static_cast<uint64_t>(wcdl)),
            cell(static_cast<double>(ts.pipe.cycles) / b),
            cell(static_cast<double>(tp.pipe.cycles) / b),
        });
    }
    std::printf("%s\n", table.toText().c_str());
    std::printf("Turnstile's overhead forces dense (expensive) "
                "sensor grids for a short WCDL;\nTurnpike stays "
                "near the baseline even with a tenth of the "
                "sensors.\n");
    return 0;
}
