/**
 * @file
 * Quickstart: build a workload, compile it under Baseline, Turnstile
 * and Turnpike, simulate all three, and print the headline numbers —
 * the 30-second tour of the library's public API.
 */

#include <cstdio>

#include "core/runner.hh"
#include "util/table.hh"

using namespace turnpike;

int
main()
{
    std::printf("Turnpike quickstart: soft error resilience for "
                "in-order cores\n\n");

    // Pick one of the 36 benchmark proxies and a WCDL (worst-case
    // acoustic detection latency, in cycles).
    const WorkloadSpec &spec = findWorkload("CPU2006", "hmmer");
    constexpr uint32_t kWcdl = 10;
    constexpr uint64_t kInsts = 100000;

    // The three schemes of interest. ResilienceConfig also exposes
    // every intermediate Fig. 21 ablation step.
    const ResilienceConfig configs[] = {
        ResilienceConfig::baseline(),
        ResilienceConfig::turnstile(kWcdl),
        ResilienceConfig::turnpike(kWcdl),
    };

    Table table({"scheme", "cycles", "insts", "IPC", "SB-stall",
                 "ckpts", "fast-released", "normalized"});
    double base_cycles = 0;
    for (const ResilienceConfig &cfg : configs) {
        // runWorkload = build IR -> compile (passes per cfg) ->
        // lower -> simulate on the cycle-level in-order pipeline.
        RunResult r = runWorkload(spec, cfg, kInsts);
        if (cfg.label == "baseline")
            base_cycles = static_cast<double>(r.pipe.cycles);
        double ipc = static_cast<double>(r.pipe.insts) /
            static_cast<double>(r.pipe.cycles);
        table.addRow({
            cfg.label,
            cell(r.pipe.cycles),
            cell(r.pipe.insts),
            cell(ipc, 2),
            cell(r.pipe.sbFullStallCycles),
            cell(r.pipe.storesCkpt),
            cell(r.pipe.storesWarFree + r.pipe.ckptColored),
            cell(static_cast<double>(r.pipe.cycles) / base_cycles),
        });
    }
    std::printf("%s\n", table.toText().c_str());
    std::printf("Turnstile gates every store for %u-cycle "
                "verification and stalls the tiny 4-entry store\n"
                "buffer; Turnpike prunes/sinks/merges checkpoints "
                "and fast-releases WAR-free and\ncolored stores, "
                "recovering the baseline's performance.\n",
                kWcdl);
    return 0;
}
