/**
 * @file
 * Compiler explorer: walk a small kernel through every Turnpike
 * compiler pass and dump the IR after each stage — strength
 * reduction, LIVM, register allocation, region formation, eager
 * checkpointing, sinking, pruning, scheduling — and finally the
 * lowered machine code with its per-region recovery programs.
 */

#include <cstdio>

#include "ir/builder.hh"
#include "ir/printer.hh"
#include "ir/verifier.hh"
#include "machine/mprinter.hh"
#include "passes/checkpoint_pruning.hh"
#include "passes/checkpoint_sinking.hh"
#include "passes/eager_checkpointing.hh"
#include "passes/induction_variable_merging.hh"
#include "passes/instruction_scheduling.hh"
#include "passes/lowering.hh"
#include "passes/pass_manager.hh"
#include "passes/region_formation.hh"
#include "passes/register_allocation.hh"
#include "passes/strength_reduction.hh"

using namespace turnpike;

namespace {

void
stage(const char *name, const Function &fn)
{
    std::printf("---------------- after %s ----------------\n%s\n",
                name, printFunction(fn).c_str());
}

} // namespace

int
main()
{
    // A miniature Fig. 8-style kernel: do { A[i] = B[i] * k; }
    // while (++i < 12); followed by a couple of stores, so the
    // whole optimization story is visible in a page of IR.
    Module mod("explorer");
    DataObject &a = mod.addData("A", 16);
    DataObject &b = mod.addData("B", 16, {1, 2, 3, 4, 5, 6});
    DataObject &out = mod.addData("out", 4);

    Function &fn = mod.addFunction("kernel");
    IRBuilder ib(fn);
    BlockId entry = ib.newBlock("entry");
    BlockId body = ib.newBlock("body");
    BlockId exit = ib.newBlock("exit");

    ib.setBlock(entry);
    Reg i = ib.reg();
    ib.liTo(i, 0);
    Reg acc = ib.reg();
    ib.liTo(acc, 0);
    Reg base_a = ib.li(static_cast<int64_t>(a.base));
    Reg base_b = ib.li(static_cast<int64_t>(b.base));
    Reg k = ib.li(3);
    ib.jmp(body);

    ib.setBlock(body);
    Reg t1 = ib.binImm(Op::Shl, i, 3);
    Reg pb = ib.add(base_b, t1);
    Reg v = ib.load(pb);
    Reg prod = ib.mul(v, k);
    ib.binTo(Op::Add, acc, acc, prod);
    Reg t2 = ib.binImm(Op::Shl, i, 3);
    Reg pa = ib.add(base_a, t2);
    ib.store(prod, pa);
    ib.binImmTo(Op::Add, i, i, 1);
    Reg c = ib.binImm(Op::CmpLt, i, 12);
    ib.br(c, body, exit);

    ib.setBlock(exit);
    Reg ob = ib.li(static_cast<int64_t>(out.base));
    Reg d = ib.binImm(Op::Add, k, 9); // prunable: affine in stable k
    ib.store(acc, ob, 0);
    ib.store(d, ob, 8);
    ib.store(k, ob, 16);
    ib.halt();

    stage("construction (what the frontend emits)", fn);

    runStrengthReduction(fn);
    stage("strength reduction (pointer IVs appear, Fig. 8b)", fn);

    runInductionVariableMerging(fn);
    runDeadCodeElimination(fn);
    stage("loop induction variable merging (Fig. 8c)", fn);

    RaOptions ra;
    ra.numAllocatable = 12;
    ra.writeCostFactor = 3.0;
    runRegisterAllocation(fn, ra);
    stage("store-aware register allocation (physical registers)", fn);

    runInstructionScheduling(fn);
    RegionFormationOptions rf;
    rf.storeBudget = 2;
    rf.keepStoreFreeLoopsWhole = true;
    runRegionFormation(fn, rf);
    stage("region formation (boundaries; budget 2 stores)", fn);

    CkptStats ck = runEagerCheckpointing(fn);
    std::printf("[eager checkpointing inserted %llu checkpoints]\n",
                static_cast<unsigned long long>(ck.inserted));
    stage("eager checkpointing (Turnstile §2.2)", fn);

    SinkStats sk = runCheckpointSinking(fn);
    std::printf("[sinking: %llu out of loops, %llu within blocks, "
                "%llu deduped]\n",
                static_cast<unsigned long long>(sk.loopSunk),
                static_cast<unsigned long long>(sk.blockSunk),
                static_cast<unsigned long long>(sk.deduped));
    stage("checkpoint sinking / LICM (§4.1.4)", fn);

    PruneResult pr = runCheckpointPruning(fn);
    std::printf("[pruning removed %llu checkpoints; %zu recovery "
                "recipes recorded]\n",
                static_cast<unsigned long long>(pr.pruned),
                pr.governed.size());
    stage("optimal checkpoint pruning (§4.1.3)", fn);

    runInstructionScheduling(fn);
    stage("checkpoint-aware instruction scheduling (§4.2)", fn);

    MachineFunction mf = lowerFunction(fn, pr);
    std::printf("---------------- lowered machine code "
                "----------------\n%s\n",
                printMachineFunction(mf).c_str());
    std::printf("code %llu B (baseline %llu B) + recovery %llu B\n",
                static_cast<unsigned long long>(mf.codeBytes()),
                static_cast<unsigned long long>(mf.baselineBytes()),
                static_cast<unsigned long long>(mf.recoveryBytes()));
    return 0;
}
