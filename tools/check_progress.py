#!/usr/bin/env python3
"""Validate a turnpike-progress-v1 heartbeat JSONL file (stdlib only).

Usage: check_progress.py FILE.jsonl [--total N] [--min-records N]

Checks, per the telemetry contract:
  - every line parses as JSON and carries the v1 schema tag plus the
    required fields with the right types;
  - seq strictly increases across the whole file, and within each
    campaign (a file may hold several sequential campaigns, e.g. a
    bench harness grid) trials-completed never decreases
    (monotonicity — progress cannot go backwards);
  - started >= completed everywhere, and every "final" record's
    per-class tallies sum to its completed count, which equals its
    total (the final record must match the campaign totals);
  - the last record has type "final" and, with --total N, its
    completed count equals N exactly;
  - at least --min-records records exist (default 2: the seq-0
    heartbeat and the final record).

Exit status: 0 when every check passes, 1 otherwise.
"""

import argparse
import json
import sys

SCHEMA = "turnpike-progress-v1"
TYPES = {"heartbeat", "final", "snapshot", "interrupt"}
REQUIRED = {
    "schema": str, "type": str, "seq": int, "elapsed_ms": int,
    "campaign": str, "total": int, "started": int, "completed": int,
    "classes": dict, "rate_per_s": (int, float),
    "eta_s": (int, float), "workers": list,
}


def main(argv):
    ap = argparse.ArgumentParser(
        usage="check_progress.py FILE.jsonl [--total N] "
              "[--min-records N]")
    ap.add_argument("file")
    ap.add_argument("--total", type=int, default=None)
    ap.add_argument("--min-records", type=int, default=2)
    args = ap.parse_args(argv[1:])

    problems = []
    records = []
    try:
        with open(args.file, encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append((lineno, json.loads(line)))
                except ValueError as e:
                    problems.append(f"line {lineno}: not JSON: {e}")
    except OSError as e:
        print(f"{args.file}: {e}", file=sys.stderr)
        return 1

    if len(records) < args.min_records:
        problems.append(f"only {len(records)} records, expected >= "
                        f"{args.min_records}")

    prev_seq = -1
    prev_completed = -1
    prev_campaign = None
    campaign_open = False
    for lineno, r in records:
        where = f"line {lineno}"
        for field, ty in REQUIRED.items():
            if not isinstance(r.get(field), ty) or \
               isinstance(r.get(field), bool):
                problems.append(f"{where}: missing/badly-typed "
                                f"'{field}'")
                break
        else:
            if r["schema"] != SCHEMA:
                problems.append(f"{where}: schema {r['schema']!r}")
            if r["type"] not in TYPES:
                problems.append(f"{where}: unknown type "
                                f"{r['type']!r}")
            if r["seq"] <= prev_seq:
                problems.append(f"{where}: seq {r['seq']} does not "
                                f"increase from {prev_seq}")
            prev_seq = r["seq"]
            # A new campaign (bench grids run several in sequence)
            # legitimately resets the trial counters; a campaign must
            # still end with a final record before the next begins.
            if r["campaign"] != prev_campaign:
                if campaign_open and prev_campaign is not None:
                    problems.append(f"{where}: campaign "
                                    f"{prev_campaign!r} never "
                                    f"emitted a final record")
                prev_campaign = r["campaign"]
                prev_completed = -1
            campaign_open = r["type"] != "final"
            if r["completed"] < prev_completed:
                problems.append(f"{where}: completed went backwards "
                                f"({prev_completed} -> "
                                f"{r['completed']})")
            prev_completed = r["completed"]
            if r["started"] < r["completed"]:
                problems.append(f"{where}: started {r['started']} < "
                                f"completed {r['completed']}")
            if not all(isinstance(v, int)
                       for v in r["classes"].values()):
                problems.append(f"{where}: non-integer class tally")
            if r["type"] == "final":
                class_sum = sum(v for v in r["classes"].values()
                                if isinstance(v, int))
                if class_sum != r["completed"]:
                    problems.append(f"{where}: final class tallies "
                                    f"sum to {class_sum} != "
                                    f"completed {r['completed']}")
                if r["completed"] != r["total"]:
                    problems.append(f"{where}: final completed "
                                    f"{r['completed']} != total "
                                    f"{r['total']}")

    if records:
        lineno, final = records[-1]
        if final.get("type") != "final":
            problems.append(f"last record (line {lineno}) has type "
                            f"{final.get('type')!r}, expected "
                            f"'final'")
        elif args.total is not None and \
                final.get("completed") != args.total:
            problems.append(f"final: completed "
                            f"{final.get('completed')} != expected "
                            f"--total {args.total}")

    for p in problems:
        print(f"{args.file}: {p}", file=sys.stderr)
    if not problems:
        print(f"{args.file}: {len(records)} progress records ok")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
