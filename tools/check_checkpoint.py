#!/usr/bin/env python3
"""Validate a turnpike-checkpoint-v1 campaign checkpoint (stdlib only).

Usage: check_checkpoint.py FILE [--complete] [--allow-torn-tail]

The checkpoint is length-framed JSONL: every record is one line of
the form "LEN\\tJSON\\n" where LEN is the decimal byte length of the
JSON payload. The first record is the campaign header; every later
record is one completed shard. Checks, per the campaign contract
(src/core/campaign.cc):

  - every line is a well-formed frame: a decimal LEN, one tab, then
    exactly LEN bytes of JSON carrying the v1 schema tag;
  - the first record is the header with the identity fields (seed,
    trials, shard_trials, golden hashes, key) typed correctly, and
    the key is a 16-digit hex string echoed by every shard record;
  - shard records are unique by shard index, their [lo, hi) ranges
    match the header's decomposition exactly (lo = shard *
    shard_trials, hi capped at trials), ranges never overlap, the
    per-trial arrays all have exactly hi - lo entries, and outcome
    codes stay within the enum (0..4);
  - a final line with no terminating newline (a torn tail from a
    kill -9) is an error unless --allow-torn-tail, matching the
    loader, which drops it and truncates on resume;
  - with --complete, the recorded shards must cover every trial.

Exit status: 0 when every check passes, 1 otherwise.
"""

import argparse
import json
import sys

SCHEMA = "turnpike-checkpoint-v1"
NUM_OUTCOMES = 5  # kNumFaultOutcomes in src/core/avf.hh
HEADER_REQUIRED = {
    "schema": str, "type": str, "key": str, "workload": str,
    "scheme": str, "seed": int, "trials": int, "shard_trials": int,
    "icount": int, "miss_rate": (int, float), "miss_rate_bits": str,
    "hang_factor": int, "golden_cycles": int, "golden_data": str,
    "golden_arch": str, "golden_insts": int,
}
SHARD_REQUIRED = {
    "schema": str, "type": str, "key": str, "shard": int, "lo": int,
    "hi": int, "outcomes": list, "cycles": list, "recoveries": list,
    "detections": list, "ecc_corrected": int, "ecc_detected": int,
    "false_alarms": int,
}


def is_hex16(s):
    return isinstance(s, str) and len(s) == 16 and \
        all(c in "0123456789abcdef" for c in s)


def check_fields(rec, required, where, problems):
    for field, ty in required.items():
        if not isinstance(rec.get(field), ty) or \
           isinstance(rec.get(field), bool):
            problems.append(f"{where}: missing/badly-typed "
                            f"'{field}'")
            return False
    return True


def main(argv):
    ap = argparse.ArgumentParser(
        usage="check_checkpoint.py FILE [--complete] "
              "[--allow-torn-tail]")
    ap.add_argument("file")
    ap.add_argument("--complete", action="store_true",
                    help="require every shard to be recorded")
    ap.add_argument("--allow-torn-tail", action="store_true",
                    help="tolerate a final line without a newline "
                         "(a kill -9 mid-write)")
    args = ap.parse_args(argv[1:])

    try:
        with open(args.file, "rb") as f:
            data = f.read()
    except OSError as e:
        print(f"{args.file}: {e}", file=sys.stderr)
        return 1

    problems = []
    records = []
    pos = 0
    recno = 0
    while pos < len(data):
        nl = data.find(b"\n", pos)
        if nl < 0:
            if not args.allow_torn_tail:
                problems.append(f"byte {pos}: torn partial record "
                                f"at end of file (resume would drop "
                                f"it; pass --allow-torn-tail to "
                                f"accept)")
            break
        line = data[pos:nl]
        recno += 1
        where = f"record {recno} (byte {pos})"
        pos = nl + 1
        tab = line.find(b"\t")
        if tab < 0:
            problems.append(f"{where}: no LEN\\tJSON separator")
            continue
        lenfield, payload = line[:tab], line[tab + 1:]
        if not lenfield.isdigit():
            problems.append(f"{where}: non-decimal length "
                            f"{lenfield!r}")
            continue
        if int(lenfield) != len(payload):
            problems.append(f"{where}: framed length {int(lenfield)}"
                            f" != payload length {len(payload)}")
            continue
        try:
            rec = json.loads(payload)
        except ValueError as e:
            problems.append(f"{where}: not JSON: {e}")
            continue
        if not isinstance(rec, dict):
            problems.append(f"{where}: payload is not an object")
            continue
        if rec.get("schema") != SCHEMA:
            problems.append(f"{where}: schema {rec.get('schema')!r}")
            continue
        records.append((where, rec))

    if not records:
        problems.append("no complete records")
    header = None
    shards = {}
    for i, (where, rec) in enumerate(records):
        if i == 0:
            if rec.get("type") != "header":
                problems.append(f"{where}: first record has type "
                                f"{rec.get('type')!r}, expected "
                                f"'header'")
                break
            if not check_fields(rec, HEADER_REQUIRED, where,
                                problems):
                break
            for field in ("key", "miss_rate_bits", "golden_data",
                          "golden_arch"):
                if not is_hex16(rec[field]):
                    problems.append(f"{where}: '{field}' is not a "
                                    f"16-digit hex string: "
                                    f"{rec[field]!r}")
            if rec["trials"] <= 0 or rec["shard_trials"] <= 0:
                problems.append(f"{where}: non-positive trials/"
                                f"shard_trials")
                break
            header = rec
            continue
        if rec.get("type") != "shard":
            problems.append(f"{where}: unexpected type "
                            f"{rec.get('type')!r}")
            continue
        if not check_fields(rec, SHARD_REQUIRED, where, problems):
            continue
        if rec["key"] != header["key"]:
            problems.append(f"{where}: key {rec['key']!r} != header "
                            f"key {header['key']!r}")
        s, lo, hi = rec["shard"], rec["lo"], rec["hi"]
        st, trials = header["shard_trials"], header["trials"]
        if s in shards:
            problems.append(f"{where}: duplicate shard {s}")
            continue
        shards[s] = rec
        want_lo = s * st
        want_hi = min(want_lo + st, trials)
        if lo != want_lo or hi != want_hi or lo >= trials:
            problems.append(f"{where}: shard {s} range [{lo},{hi}) "
                            f"does not match the decomposition "
                            f"[{want_lo},{want_hi})")
            continue
        n = hi - lo
        for field in ("outcomes", "cycles", "recoveries",
                      "detections"):
            if len(rec[field]) != n:
                problems.append(f"{where}: '{field}' has "
                                f"{len(rec[field])} entries, "
                                f"expected {n}")
        for o in rec["outcomes"]:
            if not isinstance(o, int) or isinstance(o, bool) or \
               not 0 <= o < NUM_OUTCOMES:
                problems.append(f"{where}: outcome code {o!r} "
                                f"outside 0..{NUM_OUTCOMES - 1}")
                break

    if header is not None:
        # The per-shard range check already pins each shard to its
        # decomposition slot, so coverage reduces to presence.
        st, trials = header["shard_trials"], header["trials"]
        num_shards = (trials + st - 1) // st
        extra = sorted(s for s in shards if s >= num_shards)
        if extra:
            problems.append(f"shards {extra} beyond the "
                            f"{num_shards}-shard decomposition")
        if args.complete:
            missing = sorted(set(range(num_shards)) - set(shards))
            if missing:
                problems.append(f"--complete: missing shards "
                                f"{missing}")

    for p in problems:
        print(f"{args.file}: {p}", file=sys.stderr)
    if not problems:
        print(f"{args.file}: header + {len(shards)} shard records "
              f"ok")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
