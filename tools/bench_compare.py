#!/usr/bin/env python3
"""Diff two BENCH_*.json sets and flag perf/metric regressions.

Usage:
  bench_compare.py BASELINE CURRENT [options]

BASELINE and CURRENT are either two directories (every BENCH_*.json
present in both is compared; files present in only one side are
reported) or two individual JSON files.

Understands both shapes the bench harnesses emit:
  - turnpike-stats-v1 dumps (BENCH_avf_*.json, BENCH_rootcause.json):
    every scalar/formula stat becomes a metric;
  - the throughput shape (BENCH_sim_throughput.json): each scheme's
    numeric fields become "<label>.<field>" metrics.

Wall-clock metrics (seconds / mips / mcps and host phases) are noisy
across machines, so they are IGNORED unless --include-wallclock is
given; deterministic counters are compared at --tolerance (relative,
default 0: the simulator is deterministic, so any drift is a real
behavior change worth a look).

Options:
  --tolerance PCT          default relative tolerance in percent
                           (default 0.0)
  --metric-tolerance GLOB=PCT
                           per-metric override, first match wins;
                           repeatable (e.g. 'avf.rate.*=10')
  --include-wallclock      compare wall-clock metrics too (use a
                           generous tolerance)
  --json                   emit the machine-readable verdict object
                           on stdout instead of the human table

Exit status: 0 = no regression, 1 = at least one metric beyond
tolerance (or a malformed/missing input), which is what the CI gate
keys on. stdlib only.
"""

import argparse
import fnmatch
import glob
import json
import os
import sys

WALLCLOCK_SUFFIXES = ("seconds", "mips", "mcps", "rate_per_s",
                      "eta_s", "max_rss_kb")


def is_wallclock(name):
    short = name.rsplit(".", 1)[-1]
    return short.endswith(WALLCLOCK_SUFFIXES) or \
        name.startswith("host.")


def flatten(doc):
    """Metric name -> numeric value for either bench JSON shape."""
    metrics = {}
    if not isinstance(doc, dict):
        return metrics
    if doc.get("schema") == "turnpike-stats-v1":
        for s in doc.get("stats", []):
            if isinstance(s, dict) and \
               isinstance(s.get("name"), str) and \
               isinstance(s.get("value"), (int, float)):
                metrics[s["name"]] = s["value"]
        return metrics
    for sch in doc.get("schemes", []):
        if not isinstance(sch, dict):
            continue
        label = sch.get("label", "?")
        for k, v in sch.items():
            if k != "label" and isinstance(v, (int, float)):
                metrics[f"{label}.{k}"] = v
    for ph in doc.get("phases", []):
        if isinstance(ph, dict) and isinstance(ph.get("phase"), str):
            for k in ("seconds", "exclusive_seconds"):
                if isinstance(ph.get(k), (int, float)):
                    metrics[f"host.{ph['phase']}.{k}"] = ph[k]
    return metrics


def tolerance_for(name, default_pct, overrides):
    for pattern, pct in overrides:
        if fnmatch.fnmatch(name, pattern):
            return pct
    return default_pct


def compare_file(rel, base_doc, cur_doc, args, overrides):
    base = flatten(base_doc)
    cur = flatten(cur_doc)
    rows = []
    for name in sorted(set(base) | set(cur)):
        if name not in base or name not in cur:
            rows.append({"metric": name, "status": "missing",
                         "file": rel,
                         "side": "current" if name in base
                                 else "baseline"})
            continue
        if is_wallclock(name) and not args.include_wallclock:
            rows.append({"metric": name, "status": "ignored",
                         "file": rel, "baseline": base[name],
                         "current": cur[name]})
            continue
        b, c = base[name], cur[name]
        if b == c:
            delta_pct = 0.0
        elif b == 0:
            delta_pct = float("inf")
        else:
            delta_pct = abs(c - b) / abs(b) * 100.0
        tol = tolerance_for(name, args.tolerance, overrides)
        status = "ok" if delta_pct <= tol else "regression"
        rows.append({"metric": name, "status": status, "file": rel,
                     "baseline": b, "current": c,
                     "delta_pct": delta_pct, "tolerance_pct": tol})
    return rows


def load(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def main(argv):
    ap = argparse.ArgumentParser(
        usage="bench_compare.py BASELINE CURRENT [options]")
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=0.0)
    ap.add_argument("--metric-tolerance", action="append",
                    default=[], metavar="GLOB=PCT")
    ap.add_argument("--include-wallclock", action="store_true")
    ap.add_argument("--json", action="store_true", dest="as_json")
    args = ap.parse_args(argv[1:])

    overrides = []
    for spec in args.metric_tolerance:
        pattern, eq, pct = spec.partition("=")
        if not eq:
            print(f"bad --metric-tolerance '{spec}' (want GLOB=PCT)",
                  file=sys.stderr)
            return 1
        overrides.append((pattern, float(pct)))

    pairs = []  # (relative name, baseline path, current path)
    problems = []
    if os.path.isdir(args.baseline) and os.path.isdir(args.current):
        base_files = {os.path.basename(p): p for p in
                      glob.glob(os.path.join(args.baseline,
                                             "BENCH_*.json"))}
        cur_files = {os.path.basename(p): p for p in
                     glob.glob(os.path.join(args.current,
                                            "BENCH_*.json"))}
        for name in sorted(set(base_files) | set(cur_files)):
            if name in base_files and name in cur_files:
                pairs.append((name, base_files[name],
                              cur_files[name]))
            else:
                side = "current" if name in base_files else "baseline"
                problems.append(f"{name}: missing on {side} side")
        if not pairs and not problems:
            problems.append("no BENCH_*.json files found")
    elif os.path.isfile(args.baseline) and os.path.isfile(args.current):
        pairs.append((os.path.basename(args.current), args.baseline,
                      args.current))
    else:
        problems.append("BASELINE and CURRENT must both be "
                        "directories or both files")

    rows = []
    for rel, bpath, cpath in pairs:
        try:
            rows += compare_file(rel, load(bpath), load(cpath),
                                 args, overrides)
        except (OSError, ValueError) as e:
            problems.append(f"{rel}: {e}")

    regressions = [r for r in rows
                   if r["status"] in ("regression", "missing")]
    verdict = {
        "verdict": "regression" if regressions or problems else "ok",
        "compared": sum(1 for r in rows if r["status"] == "ok") +
                    len(regressions),
        "ignored_wallclock": sum(1 for r in rows
                                 if r["status"] == "ignored"),
        "regressions": regressions,
        "problems": problems,
    }

    if args.as_json:
        json.dump(verdict, sys.stdout, indent=2)
        print()
    else:
        for p in problems:
            print(f"PROBLEM  {p}")
        for r in rows:
            if r["status"] == "regression":
                print(f"REGRESS  {r['file']}: {r['metric']} "
                      f"{r['baseline']} -> {r['current']} "
                      f"({r['delta_pct']:.2f}% > "
                      f"{r['tolerance_pct']:.2f}%)")
            elif r["status"] == "missing":
                print(f"MISSING  {r['file']}: {r['metric']} "
                      f"absent on {r['side']} side")
        print(f"bench_compare: {verdict['verdict']} — "
              f"{verdict['compared']} metrics compared, "
              f"{len(regressions)} regressed, "
              f"{verdict['ignored_wallclock']} wall-clock ignored")
    return 1 if verdict["verdict"] == "regression" else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
