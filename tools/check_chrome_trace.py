#!/usr/bin/env python3
"""Validate a turnpike chrome trace_event export (stdlib only).

Usage: check_chrome_trace.py FILE.json [--jobs N] [--trials N]
                             [--compare-outcomes FILE2.json]

Checks the contract of --trace-format chrome:
  - the file parses as JSON with a non-empty traceEvents array and
    every event carries ph/name/pid/tid (X events also ts/dur);
  - process_name metadata names both tracks (pid 1 host, pid 2 sim);
  - host phase spans (cat "phase") exist on pid 1;
  - with --trials N: exactly N trial spans (cat "trial"/"bisect"),
    each with an outcome arg, all on pid 1;
  - with --jobs N: trial spans sit on the expected tids — tid 0 for
    the serial path (N == 1), tids 1..N for the pool — and each
    trial index appears on exactly one tid;
  - with --compare-outcomes: per-trial outcomes in FILE2 match
    FILE's exactly (campaign results are deterministic at any
    TURNPIKE_JOBS, so the two exports must classify identically).

Exit status: 0 when every check passes, 1 otherwise.
"""

import argparse
import json
import sys

TRIAL_CATS = {"trial", "bisect"}


def load_events(path, problems):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        problems.append(f"{path}: {e}")
        return []
    evs = doc.get("traceEvents") if isinstance(doc, dict) else None
    if not isinstance(evs, list) or not evs:
        problems.append(f"{path}: no traceEvents array")
        return []
    return evs


def trial_outcomes(events):
    """trial index -> (tid, outcome) for campaign trial spans."""
    out = {}
    for e in events:
        if e.get("ph") == "X" and e.get("cat") in TRIAL_CATS:
            args = e.get("args", {})
            idx = args.get("trial", len(out))
            out[idx] = (e.get("tid"),
                        args.get("outcome", args.get("kind")))
    return out


def main(argv):
    ap = argparse.ArgumentParser(
        usage="check_chrome_trace.py FILE.json [--jobs N] "
              "[--trials N] [--compare-outcomes FILE2.json]")
    ap.add_argument("file")
    ap.add_argument("--jobs", type=int, default=None)
    ap.add_argument("--trials", type=int, default=None)
    ap.add_argument("--compare-outcomes", default=None)
    args = ap.parse_args(argv[1:])

    problems = []
    events = load_events(args.file, problems)

    for i, e in enumerate(events):
        if not isinstance(e, dict) or e.get("ph") not in \
                {"X", "i", "M"}:
            problems.append(f"event[{i}]: bad ph {e.get('ph')!r}")
            continue
        for field in ("name", "pid", "tid"):
            if field not in e:
                problems.append(f"event[{i}]: missing '{field}'")
        if e.get("ph") == "X" and \
                ("ts" not in e or "dur" not in e):
            problems.append(f"event[{i}]: X span without ts/dur")

    if events:
        named = {(e.get("pid"), e.get("args", {}).get("name"))
                 for e in events
                 if e.get("ph") == "M" and
                 e.get("name") == "process_name"}
        for pid, label in ((1, "turnpike host"), (2, "turnpike sim")):
            if not any(p == pid for p, _ in named):
                problems.append(f"no process_name metadata for "
                                f"pid {pid} ({label})")
        if not any(e.get("cat") == "phase" and e.get("pid") == 1
                   for e in events):
            problems.append("no host phase spans (cat 'phase')")

        trials = trial_outcomes(events)
        if args.trials is not None and len(trials) != args.trials:
            problems.append(f"expected {args.trials} trial spans, "
                            f"found {len(trials)}")
        if args.jobs is not None and trials:
            want = {0} if args.jobs == 1 else \
                set(range(1, args.jobs + 1))
            tids = {tid for tid, _ in trials.values()}
            if not tids <= want:
                problems.append(f"trial tids {sorted(tids)} outside "
                                f"expected {sorted(want)} for "
                                f"--jobs {args.jobs}")
        for idx, (_, outcome) in sorted(trials.items()):
            if not outcome:
                problems.append(f"trial {idx}: span without an "
                                f"outcome/kind arg")

        if args.compare_outcomes:
            other = trial_outcomes(
                load_events(args.compare_outcomes, problems))
            mine = {k: v[1] for k, v in trials.items()}
            theirs = {k: v[1] for k, v in other.items()}
            if mine != theirs:
                problems.append(
                    f"per-trial outcomes differ from "
                    f"{args.compare_outcomes}: {mine} vs {theirs}")

    for p in problems:
        print(f"{args.file}: {p}", file=sys.stderr)
    if not problems:
        print(f"{args.file}: {len(events)} chrome events ok")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
