#!/usr/bin/env bash
# Measure simulator throughput (simulated MIPS per scheme) the way
# perf PRs are judged: a Release build (with LTO, see the top-level
# CMakeLists.txt) of bench/perf_throughput over the full workload
# suite, repeated to expose run-to-run noise. Writes
# BENCH_sim_throughput.json (from the last repetition) into the repo
# root and prints each repetition's table.
#
# Usage: tools/bench_perf.sh [repetitions]
#   TURNPIKE_BENCH_ICOUNT   per-run instruction budget
#                           (default here: 1000000 for stable numbers)
#   TURNPIKE_PERF_WORKLOADS cap on workloads per scheme (default: all)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
reps="${1:-3}"
build="$repo/build-perf"

cmake -S "$repo" -B "$build" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build" -j"$(nproc)" --target perf_throughput

export TURNPIKE_BENCH_ICOUNT="${TURNPIKE_BENCH_ICOUNT:-1000000}"
cd "$repo"
for ((i = 1; i <= reps; i++)); do
    echo "== repetition $i/$reps =="
    "$build/bench/perf_throughput"
done
