#!/usr/bin/env bash
# Measure simulator throughput (simulated MIPS per scheme) the way
# perf PRs are judged: a Release build (with LTO, see the top-level
# CMakeLists.txt) of bench/perf_throughput over the full workload
# suite, repeated to expose run-to-run noise. Writes
# BENCH_sim_throughput.json (from the last repetition) into the repo
# root and prints each repetition's table.
#
# Usage: tools/bench_perf.sh [repetitions]
#   TURNPIKE_BENCH_ICOUNT   per-run instruction budget
#                           (default here: 1000000 for stable numbers)
#   TURNPIKE_PERF_WORKLOADS cap on workloads per scheme (default: all)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
reps="${1:-3}"
build="$repo/build-perf"

cmake -S "$repo" -B "$build" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build" -j"$(nproc)" --target perf_throughput

export TURNPIKE_BENCH_ICOUNT="${TURNPIKE_BENCH_ICOUNT:-1000000}"
cd "$repo"
for ((i = 1; i <= reps; i++)); do
    echo "== repetition $i/$reps =="
    "$build/bench/perf_throughput"
done

# Host-phase self-profile of the last repetition, from the JSON the
# bench now embeds (build/compile/simulate and per-pass times).
python3 - <<'EOF'
import json
with open("BENCH_sim_throughput.json") as f:
    doc = json.load(f)
phases = doc.get("phases", [])
if phases:
    print("\n== host phase profile (last repetition) ==")
    for p in sorted(phases, key=lambda p: -p["seconds"]):
        print(f"  {p['phase']:<36} {p['seconds']:>10.3f} s"
              f"  {p['calls']:>8} calls")
EOF
