#!/usr/bin/env python3
"""Validate a turnpike-stats-v1 JSON dump (stdlib only).

Usage: stats_schema_check.py FILE.json [FILE.json ...]

Exits 0 when every file conforms to the schema written by
StatRegistry::dumpJson, 1 otherwise with one diagnostic per problem.
Wired into ctest as `stats_schema_check` against the stats_smoke
dump; also handy standalone against any --stats-file output.
"""

import json
import sys

SCHEMA = "turnpike-stats-v1"
KINDS = {"scalar", "formula", "distribution", "histogram"}


def err(path, msg, problems):
    problems.append(f"{path}: {msg}")


def check_stat(i, s, problems):
    where = f"stats[{i}]"
    if not isinstance(s, dict):
        err(where, "not an object", problems)
        return
    for field in ("name", "desc", "unit", "kind"):
        if not isinstance(s.get(field), str):
            err(where, f"missing/str '{field}'", problems)
            return
    kind = s["kind"]
    where = f"stats[{i}] ({s['name']})"
    if kind not in KINDS:
        err(where, f"unknown kind '{kind}'", problems)
        return
    if kind == "scalar":
        if not isinstance(s.get("value"), (int, float)):
            err(where, "scalar without numeric 'value'", problems)
    elif kind == "formula":
        if not isinstance(s.get("expr"), str):
            err(where, "formula without 'expr'", problems)
        if not isinstance(s.get("value"), (int, float)):
            err(where, "formula without numeric 'value'", problems)
    elif kind == "distribution":
        for field in ("count", "sum", "min", "max", "mean"):
            if not isinstance(s.get(field), (int, float)):
                err(where, f"distribution without '{field}'", problems)
    elif kind == "histogram":
        if not isinstance(s.get("count"), int):
            err(where, "histogram without integer 'count'", problems)
        buckets = s.get("buckets")
        if not isinstance(buckets, list):
            err(where, "histogram without 'buckets' array", problems)
            return
        total = 0
        for j, b in enumerate(buckets):
            if not isinstance(b, dict) or \
               not isinstance(b.get("lo"), int) or \
               "hi" not in b or not isinstance(b.get("n"), int):
                err(where, f"bucket[{j}] malformed", problems)
                return
            total += b["n"]
        if total != s["count"]:
            err(where, f"bucket sum {total} != count {s['count']}",
                problems)


def check_series(i, ts, problems):
    where = f"intervals[{i}]"
    if not isinstance(ts, dict):
        err(where, "not an object", problems)
        return
    for field in ("name", "desc"):
        if not isinstance(ts.get(field), str):
            err(where, f"missing/str '{field}'", problems)
            return
    where = f"intervals[{i}] ({ts['name']})"
    cols = ts.get("columns")
    rows = ts.get("rows")
    if not isinstance(cols, list) or \
       not all(isinstance(c, str) for c in cols):
        err(where, "'columns' is not a string array", problems)
        return
    if not isinstance(rows, list):
        err(where, "'rows' is not an array", problems)
        return
    for j, row in enumerate(rows):
        if not isinstance(row, list) or len(row) != len(cols):
            err(where, f"row[{j}] arity != {len(cols)} columns",
                problems)
            return
        if not all(isinstance(v, int) for v in row):
            err(where, f"row[{j}] has non-integer values", problems)
            return


def check_host(i, h, problems):
    where = f"host[{i}]"
    if not isinstance(h, dict) or \
       not isinstance(h.get("phase"), str) or \
       not isinstance(h.get("seconds"), (int, float)) or \
       not isinstance(h.get("calls"), int):
        err(where, "needs phase/seconds/calls", problems)
        return
    # Optional resource fields (present in dumps since the
    # inclusive/exclusive split); when present they must be sane.
    if "exclusive_seconds" in h:
        excl = h["exclusive_seconds"]
        if not isinstance(excl, (int, float)):
            err(where, "'exclusive_seconds' is not numeric", problems)
        elif excl > h["seconds"] + 1e-9:
            err(where, f"exclusive_seconds {excl} exceeds "
                f"inclusive seconds {h['seconds']}", problems)
    for field in ("user_seconds", "sys_seconds", "max_rss_kb"):
        if field in h and not isinstance(h[field], (int, float)):
            err(where, f"'{field}' is not numeric", problems)


def check_host_resources(hr, problems):
    if hr is None:
        return  # optional section
    if not isinstance(hr, dict):
        err("host_resources", "not an object", problems)
        return
    for field in ("max_rss_kb", "user_seconds", "sys_seconds"):
        if not isinstance(hr.get(field), (int, float)):
            err("host_resources", f"missing/numeric '{field}'",
                problems)


def check_rootcause(stats, problems):
    """Namespace invariants for rootcause.* dumps.

    A dump carrying any rootcause.* stat must carry the core trio
    (analyzed, attributed, state_only) and satisfy
    attributed + state_only == analyzed: every bisected trial either
    names a divergent commit or was pure state corruption.
    """
    by_name = {s["name"]: s for s in stats
               if isinstance(s, dict) and isinstance(s.get("name"), str)}
    if not any(n.startswith("rootcause.") for n in by_name):
        return
    required = ("rootcause.analyzed", "rootcause.attributed",
                "rootcause.state_only")
    values = {}
    for name in required:
        s = by_name.get(name)
        if s is None or not isinstance(s.get("value"), (int, float)):
            err("rootcause", f"namespace present but '{name}' "
                "missing or non-numeric", problems)
            return
        values[name] = s["value"]
    if values["rootcause.attributed"] + values["rootcause.state_only"] \
            != values["rootcause.analyzed"]:
        err("rootcause",
            f"attributed {values['rootcause.attributed']} + "
            f"state_only {values['rootcause.state_only']} != "
            f"analyzed {values['rootcause.analyzed']}", problems)
    kinds = [n for n in by_name if n.startswith("rootcause.kind.")]
    if kinds:
        total = sum(by_name[n].get("value", 0) for n in kinds)
        if total != values["rootcause.analyzed"]:
            err("rootcause", f"kind counts sum to {total}, expected "
                f"analyzed {values['rootcause.analyzed']}", problems)


def check_detector(stats, problems):
    """Namespace invariants for detector.* dumps.

    A dump carrying any detector.* stat must carry all three
    per-structure protection levels (small enums) and sensor noise
    rates inside [0, 1].
    """
    by_name = {s["name"]: s for s in stats
               if isinstance(s, dict) and isinstance(s.get("name"), str)}
    if not any(n.startswith("detector.") for n in by_name):
        return
    for name in ("detector.protect.reg", "detector.protect.sb",
                 "detector.protect.cache"):
        s = by_name.get(name)
        if s is None or not isinstance(s.get("value"), (int, float)):
            err("detector", f"namespace present but '{name}' "
                "missing or non-numeric", problems)
            return
        if not 0 <= s["value"] <= 3:
            err("detector", f"'{name}' = {s['value']} outside the "
                "protection-level enum [0, 3]", problems)
    for name in ("detector.false_pos_rate", "detector.false_neg_rate"):
        s = by_name.get(name)
        if s is None or not isinstance(s.get("value"), (int, float)):
            err("detector", f"namespace present but '{name}' "
                "missing or non-numeric", problems)
            return
        if not 0 <= s["value"] <= 1:
            err("detector", f"'{name}' = {s['value']} outside [0, 1]",
                problems)


def check_pareto(stats, problems):
    """Namespace invariants for pareto.* dumps.

    A dump carrying any pareto.* stat must carry the point/frontier
    counters with frontier_size <= points, and every frontier point
    block must be complete (one stat per scored objective).
    """
    by_name = {s["name"]: s for s in stats
               if isinstance(s, dict) and isinstance(s.get("name"), str)}
    if not any(n.startswith("pareto.") for n in by_name):
        return
    values = {}
    for name in ("pareto.points", "pareto.frontier_size"):
        s = by_name.get(name)
        if s is None or not isinstance(s.get("value"), (int, float)):
            err("pareto", f"namespace present but '{name}' "
                "missing or non-numeric", problems)
            return
        values[name] = s["value"]
    if values["pareto.frontier_size"] > values["pareto.points"]:
        err("pareto",
            f"frontier_size {values['pareto.frontier_size']} exceeds "
            f"points {values['pareto.points']}", problems)
    if values["pareto.frontier_size"] < 1 <= values["pareto.points"]:
        err("pareto", "non-empty sweep with an empty frontier "
            "(the best point always survives)", problems)
    fields = ("wcdl", "sb", "clq", "pool", "sensors", "area_um2",
              "energy_pj", "overhead", "vulnerability")
    for fi in range(int(values["pareto.frontier_size"])):
        for field in fields:
            name = f"pareto.frontier.{fi}.{field}"
            s = by_name.get(name)
            if s is None or not isinstance(s.get("value"),
                                           (int, float)):
                err("pareto", f"frontier point {fi} missing/non-"
                    f"numeric '{name}'", problems)
                return


def check_file(path):
    problems = []
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        return [f"{path}: {e}"]

    if not isinstance(doc, dict):
        return [f"{path}: top level is not an object"]
    if doc.get("schema") != SCHEMA:
        err("schema", f"expected '{SCHEMA}', got {doc.get('schema')!r}",
            problems)
    if not isinstance(doc.get("meta"), dict) or \
       not all(isinstance(v, str) for v in doc["meta"].values()):
        err("meta", "not an object of strings", problems)

    stats = doc.get("stats")
    if not isinstance(stats, list):
        err("stats", "not an array", problems)
    else:
        names = set()
        for i, s in enumerate(stats):
            check_stat(i, s, problems)
            if isinstance(s, dict) and isinstance(s.get("name"), str):
                if s["name"] in names:
                    err(f"stats[{i}]", f"duplicate name '{s['name']}'",
                        problems)
                names.add(s["name"])
        check_rootcause(stats, problems)
        check_detector(stats, problems)
        check_pareto(stats, problems)

    intervals = doc.get("intervals")
    if not isinstance(intervals, list):
        err("intervals", "not an array", problems)
    else:
        for i, ts in enumerate(intervals):
            check_series(i, ts, problems)

    host = doc.get("host")
    if not isinstance(host, list):
        err("host", "not an array", problems)
    else:
        for i, h in enumerate(host):
            check_host(i, h, problems)

    check_host_resources(doc.get("host_resources"), problems)

    return [f"{path}: {p}" for p in problems]


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 1
    problems = []
    for path in argv[1:]:
        problems += check_file(path)
    for p in problems:
        print(p, file=sys.stderr)
    if not problems:
        print(f"{len(argv) - 1} file(s) conform to {SCHEMA}")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
